//! Event colors.
//!
//! Colors are the concurrency-control annotation of the event-coloring
//! model (paper Section II-A): two events with *different* colors may be
//! handled concurrently, while events of the *same* color are handled
//! serially, which the runtime guarantees by keeping all events of one
//! color on a single core at any time. Events without an annotation all
//! map to the default color and are therefore fully serialized.

use std::fmt;

/// Number of distinct colors. The paper represents colors as a "short
/// integer" and sizes the color-map accordingly (Section IV-A).
pub const COLOR_SPACE: usize = 1 << 16;

/// An event color: a 16-bit concurrency-control annotation.
///
/// # Examples
///
/// ```
/// use mely_core::color::Color;
///
/// let per_connection = Color::new(1042);
/// assert_eq!(per_connection.value(), 1042);
/// assert!(!per_connection.is_default());
/// assert!(Color::DEFAULT.is_default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(u16);

impl Color {
    /// The color of unannotated events. All such events are mutually
    /// exclusive with each other (paper Section II-A).
    pub const DEFAULT: Color = Color(0);

    /// Creates a color from its 16-bit value.
    pub const fn new(value: u16) -> Self {
        Color(value)
    }

    /// The raw 16-bit value.
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Whether this is the default (serializing) color.
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }

    /// The initial core a color is dispatched to on an `n`-core machine:
    /// the "simple hashing function on colors" of Section II-A.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub const fn home_core(self, n: usize) -> usize {
        assert!(n > 0, "machine must have at least one core");
        self.0 as usize % n
    }
}

impl From<u16> for Color {
    fn from(v: u16) -> Self {
        Color(v)
    }
}

/// An inclusive range of colors — the unit of the color-space
/// partition.
///
/// Two canonical ranges partition the non-default colors, formalizing
/// what used to be an ad-hoc convention in `mely-net`:
///
/// - [`ColorRange::CONNECTIONS`] (`1..=0x7FFF`) — *keyed* colors for
///   per-entity serialization (connections, sessions, requests). Keys
///   hash into the range with [`ColorRange::keyed`]; a hash collision
///   merely serializes the two entities, which is always safe.
/// - [`ColorRange::LISTENERS`] (`0x8000..=0xFFFF`) — *structured*
///   colors derived from listener ports, disjoint from every
///   connection color so accept storms cannot serialize behind request
///   processing.
///
/// The stage layer further splits the connection range into two
/// *planes*: [`ColorRange::STAGE_SERIAL`] (allocator territory —
/// [`ColorSpace::for_stages`] hands serial stage colors out of it) and
/// [`ColorRange::STAGE_KEYED`] (hash territory — `StageSpec::keyed`
/// colors land there). The split makes serial-vs-keyed collisions
/// impossible by construction; the raw `mely-net` bridge keeps hashing
/// over the full [`ColorRange::CONNECTIONS`], where any collision is
/// still safe (it only serializes).
///
/// # Examples
///
/// ```
/// use mely_core::color::ColorRange;
///
/// let c = ColorRange::CONNECTIONS.keyed(12_345);
/// assert!(ColorRange::CONNECTIONS.contains(c));
/// assert!(!c.is_default());
/// assert!(!ColorRange::LISTENERS.contains(c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColorRange {
    first: u16,
    last: u16,
}

impl ColorRange {
    /// Keyed per-connection / per-session colors: `1..=0x7FFF`.
    pub const CONNECTIONS: ColorRange = ColorRange::new(0x0001, 0x7FFF);

    /// Listener (accept) colors: `0x8000..=0xFFFF`, disjoint from
    /// [`ColorRange::CONNECTIONS`].
    pub const LISTENERS: ColorRange = ColorRange::new(0x8000, 0xFFFF);

    /// The *serial plane* of the connection range: the sub-range
    /// [`ColorSpace::for_stages`] allocates serial stage colors from.
    /// Disjoint from [`ColorRange::STAGE_KEYED`], so an
    /// allocator-assigned stage color can never collide with a hashed
    /// per-message color — without this split, connection 0's keyed
    /// color would equal the first allocated serial color on every
    /// run, silently serializing that connection's whole request path
    /// behind the poll loop.
    pub const STAGE_SERIAL: ColorRange = ColorRange::new(0x0001, 0x0FFF);

    /// The *keyed plane* of the connection range: where the stage
    /// layer's `StageSpec::keyed` colors hash to. Keyed-vs-keyed
    /// collisions remain possible (and safe — they only serialize);
    /// keyed-vs-serial collisions are impossible by construction.
    pub const STAGE_KEYED: ColorRange = ColorRange::new(0x1000, 0x7FFF);

    /// Creates the inclusive range `first..=last`.
    ///
    /// # Panics
    ///
    /// Panics if `first > last`.
    pub const fn new(first: u16, last: u16) -> Self {
        assert!(first <= last, "color range must not be empty");
        ColorRange { first, last }
    }

    /// First color of the range.
    pub const fn first(self) -> Color {
        Color(self.first)
    }

    /// Last color of the range.
    pub const fn last(self) -> Color {
        Color(self.last)
    }

    /// Number of colors in the range (at least 1).
    pub const fn len(self) -> u32 {
        (self.last - self.first) as u32 + 1
    }

    /// Ranges are never empty; present for API completeness.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Whether `color` falls inside the range.
    pub const fn contains(self, color: Color) -> bool {
        self.first <= color.0 && color.0 <= self.last
    }

    /// Hashes `key` into the range. Collisions serialize the two keys —
    /// safe by the coloring model, merely less parallel.
    pub const fn keyed(self, key: u64) -> Color {
        Color(self.first + (key % self.len() as u64) as u16)
    }
}

/// Error returned by [`ColorSpace::claim`] when the color is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorTaken(
    /// The contested color.
    pub Color,
);

impl fmt::Display for ColorTaken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is already allocated or reserved", self.0)
    }
}

impl std::error::Error for ColorTaken {}

/// A collision-checked allocator over the 16-bit color space.
///
/// Hand-picking `u16` colors works for one service; the moment two
/// services (or a service and the `mely-net` bridge) share an executor,
/// silent collisions serialize unrelated work — or worse, couple a
/// stage to a listener. `ColorSpace` makes the assignment explicit: a
/// bitmap tracks every allocated or reserved color, [`ColorSpace::alloc`]
/// hands out the lowest free color, and [`ColorSpace::claim`] takes a
/// specific one, failing loudly on a collision.
///
/// [`ColorSpace::for_stages`] is the configuration the stage layer
/// builds on: the default color and the whole listener range are
/// reserved, so allocated stage colors can never shadow a listener and
/// never silently join the all-serializing default color.
///
/// # Examples
///
/// ```
/// use mely_core::color::{Color, ColorRange, ColorSpace};
///
/// let mut space = ColorSpace::for_stages();
/// let a = space.alloc();
/// let b = space.alloc();
/// assert_ne!(a, b);
/// assert!(!a.is_default());
/// assert!(ColorRange::CONNECTIONS.contains(a));
/// assert!(space.claim(a).is_err(), "collision-checked");
/// ```
#[derive(Clone)]
pub struct ColorSpace {
    /// One bit per color; set = allocated or reserved.
    used: Box<[u64; COLOR_SPACE / 64]>,
    /// Lowest value `alloc` still has to inspect.
    cursor: u32,
    /// Colors handed out or explicitly claimed/reserved (excluding the
    /// implicit default-color reservation).
    allocated: u32,
}

impl Default for ColorSpace {
    fn default() -> Self {
        ColorSpace::new()
    }
}

impl ColorSpace {
    /// An empty space with only [`Color::DEFAULT`] reserved (the default
    /// color serializes *everything* mapped to it and must never be
    /// handed out implicitly).
    pub fn new() -> Self {
        let mut s = ColorSpace {
            used: Box::new([0u64; COLOR_SPACE / 64]),
            cursor: 1,
            allocated: 0,
        };
        s.set(Color::DEFAULT);
        s
    }

    /// The stage layer's configuration: [`Color::DEFAULT`], the whole
    /// [`ColorRange::LISTENERS`] range and the keyed plane
    /// ([`ColorRange::STAGE_KEYED`]) reserved, so serial allocations
    /// come from [`ColorRange::STAGE_SERIAL`] (4095 colors) and can
    /// never shadow a listener or a hashed per-message stage color.
    pub fn for_stages() -> Self {
        let mut s = ColorSpace::new();
        s.reserve_range(ColorRange::LISTENERS);
        s.reserve_range(ColorRange::STAGE_KEYED);
        s
    }

    fn set(&mut self, c: Color) {
        self.used[c.0 as usize / 64] |= 1u64 << (c.0 % 64);
    }

    /// Whether `color` has been allocated or reserved.
    pub fn is_used(&self, color: Color) -> bool {
        self.used[color.0 as usize / 64] >> (color.0 % 64) & 1 == 1
    }

    /// Colors handed out through [`ColorSpace::alloc`] /
    /// [`ColorSpace::claim`] / [`ColorSpace::reserve_range`] (the
    /// implicit default-color reservation is not counted).
    pub fn allocated(&self) -> u32 {
        self.allocated
    }

    /// Allocates the lowest free color.
    ///
    /// # Panics
    ///
    /// Panics when the space is exhausted — with 65 535 allocatable
    /// colors, exhaustion means a leak (e.g. allocating per request
    /// instead of per stage), not a workload that needs more colors.
    pub fn alloc(&mut self) -> Color {
        for v in self.cursor..COLOR_SPACE as u32 {
            let c = Color(v as u16);
            if !self.is_used(c) {
                self.set(c);
                self.cursor = v + 1;
                self.allocated += 1;
                return c;
            }
        }
        panic!("color space exhausted: all {COLOR_SPACE} colors allocated or reserved");
    }

    /// Claims a specific color, failing if it is already taken. Use for
    /// externally mandated colors (an N-copy plane, a paper-mandated
    /// assignment) that must still be collision-checked against the
    /// rest of the application.
    ///
    /// # Errors
    ///
    /// Returns [`ColorTaken`] when the color is already allocated or
    /// reserved.
    pub fn claim(&mut self, color: Color) -> Result<Color, ColorTaken> {
        if self.is_used(color) {
            return Err(ColorTaken(color));
        }
        self.set(color);
        self.allocated += 1;
        Ok(color)
    }

    /// Reserves every color of `range`, so [`ColorSpace::alloc`] skips
    /// it and [`ColorSpace::claim`] fails inside it. Already-claimed
    /// colors inside the range stay claimed (reservation is idempotent).
    ///
    /// Word-granular: whole `u64`s of the bitmap are filled directly
    /// (with masked edge words), so reserving a 32K-color plane — done
    /// by every `PipelineBuilder::new` via [`ColorSpace::for_stages`] —
    /// is a few dozen operations, not one loop iteration per color.
    pub fn reserve_range(&mut self, range: ColorRange) {
        let (first, last) = (range.first as usize, range.last as usize);
        for w in first / 64..=last / 64 {
            let lo = first.max(w * 64) % 64;
            let hi = last.min(w * 64 + 63) % 64;
            // Bits lo..=hi of word w lie inside the range.
            let mask = (u64::MAX >> (63 - hi)) & (u64::MAX << lo);
            let newly = mask & !self.used[w];
            self.used[w] |= mask;
            self.allocated += newly.count_ones();
        }
    }
}

impl fmt::Debug for ColorSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColorSpace")
            .field("allocated", &self.allocated)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "color#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_color_is_zero() {
        assert_eq!(Color::DEFAULT, Color::new(0));
        assert!(Color::DEFAULT.is_default());
        assert_eq!(Color::default(), Color::DEFAULT);
    }

    #[test]
    fn home_core_is_modular_hash() {
        assert_eq!(Color::new(0).home_core(8), 0);
        assert_eq!(Color::new(13).home_core(8), 5);
        assert_eq!(Color::new(16).home_core(8), 0);
        assert_eq!(Color::new(65535).home_core(3), 65535 % 3);
    }

    #[test]
    fn display_and_conversion() {
        let c: Color = 7u16.into();
        assert_eq!(c.to_string(), "color#7");
        assert_eq!(c.value(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn home_core_rejects_zero_cores() {
        let _ = Color::new(1).home_core(0);
    }

    #[test]
    fn canonical_ranges_partition_the_nonzero_space() {
        let conns = ColorRange::CONNECTIONS;
        let listeners = ColorRange::LISTENERS;
        assert_eq!(conns.first(), Color::new(1));
        assert_eq!(conns.last(), Color::new(0x7FFF));
        assert_eq!(listeners.first(), Color::new(0x8000));
        assert_eq!(listeners.last(), Color::new(0xFFFF));
        assert_eq!(
            conns.len() + listeners.len() + 1,
            COLOR_SPACE as u32,
            "ranges plus the default color cover the space exactly"
        );
        assert!(!conns.contains(Color::DEFAULT));
        assert!(!listeners.contains(Color::DEFAULT));
        assert!(!conns.contains(listeners.first()));
        assert!(!listeners.contains(conns.last()));
    }

    #[test]
    fn stage_planes_partition_the_connection_range() {
        let serial = ColorRange::STAGE_SERIAL;
        let keyed = ColorRange::STAGE_KEYED;
        assert_eq!(serial.first(), ColorRange::CONNECTIONS.first());
        assert_eq!(keyed.last(), ColorRange::CONNECTIONS.last());
        assert_eq!(serial.len() + keyed.len(), ColorRange::CONNECTIONS.len());
        assert!(!keyed.contains(serial.last()));
        assert!(!serial.contains(keyed.first()));
        // for_stages can therefore never hand out a keyed-plane color.
        let mut s = ColorSpace::for_stages();
        for _ in 0..16 {
            assert!(serial.contains(s.alloc()));
        }
        assert!(s.is_used(keyed.first()) && s.is_used(keyed.last()));
    }

    #[test]
    fn keyed_colors_stay_in_range_and_avoid_default() {
        for key in [0u64, 1, 0x7FFE, 0x7FFF, 0xFFFF, u64::MAX] {
            let c = ColorRange::CONNECTIONS.keyed(key);
            assert!(ColorRange::CONNECTIONS.contains(c), "key {key}");
            assert!(!c.is_default());
            let l = ColorRange::LISTENERS.keyed(key);
            assert!(ColorRange::LISTENERS.contains(l), "key {key}");
        }
        // Wrap-around is modular, not truncating.
        assert_eq!(
            ColorRange::CONNECTIONS.keyed(0x7FFF),
            ColorRange::CONNECTIONS.keyed(0)
        );
    }

    #[test]
    fn color_space_allocates_without_collisions() {
        let mut s = ColorSpace::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_eq!(a, Color::new(1), "default color is never handed out");
        assert_eq!(b, Color::new(2));
        assert!(s.is_used(a) && s.is_used(b));
        assert!(!s.is_used(Color::new(3)));
        assert_eq!(s.allocated(), 2);
        assert_eq!(s.claim(a), Err(ColorTaken(a)));
        assert_eq!(s.claim(Color::new(100)), Ok(Color::new(100)));
        // Alloc skips explicitly claimed colors.
        for _ in 0..97 {
            s.alloc();
        }
        assert_eq!(s.alloc(), Color::new(101), "alloc skipped the claim");
    }

    #[test]
    fn for_stages_reserves_listeners_and_default() {
        let mut s = ColorSpace::for_stages();
        assert!(s.is_used(Color::DEFAULT));
        assert!(s.is_used(ColorRange::LISTENERS.first()));
        assert!(s.is_used(ColorRange::LISTENERS.last()));
        assert!(s.claim(Color::new(0x8000)).is_err());
        let c = s.alloc();
        assert!(ColorRange::CONNECTIONS.contains(c));
    }

    #[test]
    fn reserve_range_is_idempotent_over_claims() {
        let mut s = ColorSpace::new();
        s.claim(Color::new(10)).unwrap();
        s.reserve_range(ColorRange::new(8, 12));
        assert_eq!(s.allocated(), 5, "10 was counted once");
        for v in 8..=12u16 {
            assert!(s.is_used(Color::new(v)));
        }
        assert_eq!(s.alloc(), Color::new(1));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_space_panics() {
        let mut s = ColorSpace::new();
        s.reserve_range(ColorRange::new(1, u16::MAX));
        let _ = s.alloc();
    }

    #[test]
    fn color_taken_displays_the_color() {
        assert!(ColorTaken(Color::new(7)).to_string().contains("color#7"));
    }
}
