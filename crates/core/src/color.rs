//! Event colors.
//!
//! Colors are the concurrency-control annotation of the event-coloring
//! model (paper Section II-A): two events with *different* colors may be
//! handled concurrently, while events of the *same* color are handled
//! serially, which the runtime guarantees by keeping all events of one
//! color on a single core at any time. Events without an annotation all
//! map to the default color and are therefore fully serialized.

use std::fmt;

/// Number of distinct colors. The paper represents colors as a "short
/// integer" and sizes the color-map accordingly (Section IV-A).
pub const COLOR_SPACE: usize = 1 << 16;

/// An event color: a 16-bit concurrency-control annotation.
///
/// # Examples
///
/// ```
/// use mely_core::color::Color;
///
/// let per_connection = Color::new(1042);
/// assert_eq!(per_connection.value(), 1042);
/// assert!(!per_connection.is_default());
/// assert!(Color::DEFAULT.is_default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(u16);

impl Color {
    /// The color of unannotated events. All such events are mutually
    /// exclusive with each other (paper Section II-A).
    pub const DEFAULT: Color = Color(0);

    /// Creates a color from its 16-bit value.
    pub const fn new(value: u16) -> Self {
        Color(value)
    }

    /// The raw 16-bit value.
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Whether this is the default (serializing) color.
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }

    /// The initial core a color is dispatched to on an `n`-core machine:
    /// the "simple hashing function on colors" of Section II-A.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub const fn home_core(self, n: usize) -> usize {
        assert!(n > 0, "machine must have at least one core");
        self.0 as usize % n
    }
}

impl From<u16> for Color {
    fn from(v: u16) -> Self {
        Color(v)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "color#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_color_is_zero() {
        assert_eq!(Color::DEFAULT, Color::new(0));
        assert!(Color::DEFAULT.is_default());
        assert_eq!(Color::default(), Color::DEFAULT);
    }

    #[test]
    fn home_core_is_modular_hash() {
        assert_eq!(Color::new(0).home_core(8), 0);
        assert_eq!(Color::new(13).home_core(8), 5);
        assert_eq!(Color::new(16).home_core(8), 0);
        assert_eq!(Color::new(65535).home_core(3), 65535 % 3);
    }

    #[test]
    fn display_and_conversion() {
        let c: Color = 7u16.into();
        assert_eq!(c.to_string(), "color#7");
        assert_eq!(c.value(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn home_core_rejects_zero_cores() {
        let _ = Color::new(1).home_core(0);
    }
}
