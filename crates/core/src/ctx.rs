//! The execution context handed to event handlers.
//!
//! A handler receives a `&mut Ctx` and uses it to register follow-up
//! events (immediately or after a virtual delay), to account CPU work
//! ([`Ctx::charge`]) and memory accesses ([`Ctx::touch`] /
//! [`Ctx::touch_range`]), and to stop the runtime. Effects are buffered
//! and applied by the executor after the handler returns, mirroring how
//! the paper's runtime dispatches events produced during handler
//! execution.

use crate::dataset::DataSetRef;
use crate::event::Event;

/// A memory touch requested by a handler (region + byte range).
#[derive(Debug, Clone)]
pub(crate) struct Touch {
    pub ds: DataSetRef,
    pub offset: u64,
    pub len: u64,
}

/// Buffered effects of one handler execution.
#[derive(Default)]
pub(crate) struct CtxEffects {
    pub registrations: Vec<Event>,
    pub delayed: Vec<(u64, Event)>, // (delay_cycles, event)
    pub charged: u64,
    pub touches: Vec<Touch>,
    pub stop: bool,
    /// Latency samples of requests completed by this handler execution
    /// ([`Ctx::complete_request`]); each feeds the per-request latency
    /// histogram of the executing core. Inline first slot: a handler
    /// completing one request (the overwhelmingly common case) must not
    /// pay a heap allocation on the dispatch path.
    pub completed_first: Option<u64>,
    pub completed_rest: Vec<u64>,
    /// Requests this handler execution declared failed
    /// ([`Ctx::fail_request`]): carried to completion as errors, not
    /// shed — they feed `failed_requests`, never the latency histogram.
    pub failed: u64,
}

impl CtxEffects {
    /// Iterates the recorded completion latencies.
    pub(crate) fn completions(&self) -> impl Iterator<Item = u64> + '_ {
        self.completed_first
            .into_iter()
            .chain(self.completed_rest.iter().copied())
    }
}

/// Execution context passed to event handlers.
pub struct Ctx<'a> {
    core: usize,
    now: u64,
    effects: &'a mut CtxEffects,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(core: usize, now: u64, effects: &'a mut CtxEffects) -> Self {
        Ctx { core, now, effects }
    }

    /// The core executing this handler.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Current time in cycles: virtual time under the simulation
    /// executor, the calibrated cycle counter under the threaded one.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Registers a follow-up event. It is routed to the core currently
    /// owning its color (initially `color.home_core(n)`, possibly moved by
    /// steals) once this handler returns.
    pub fn register(&mut self, event: Event) {
        self.effects.registrations.push(event);
    }

    /// Registers an event that becomes runnable only `delay` cycles from
    /// now — used to model timers and external latencies (e.g. network
    /// round-trips) in simulation, and implemented with the cycle clock in
    /// the threaded executor.
    pub fn register_after(&mut self, delay: u64, event: Event) {
        self.effects.delayed.push((delay, event));
    }

    /// Accounts `cycles` of CPU work to this handler execution, *in
    /// addition to* the event's declared cost. The simulation executor
    /// advances the core's virtual clock; the threaded executor spins for
    /// that many real cycles.
    pub fn charge(&mut self, cycles: u64) {
        self.effects.charged += cycles;
    }

    /// Touches an entire data set (line-granular sweep through the cache
    /// simulator under simulation; accounted but not materialised under
    /// the threaded executor).
    pub fn touch(&mut self, ds: &DataSetRef) {
        self.touch_range(ds, 0, ds.len());
    }

    /// Touches `len` bytes of `ds` starting at `offset`. Ranges reaching
    /// past the end of the region are clipped.
    pub fn touch_range(&mut self, ds: &DataSetRef, offset: u64, len: u64) {
        let offset = offset.min(ds.len());
        let len = len.min(ds.len() - offset);
        if len == 0 {
            return;
        }
        self.effects.touches.push(Touch {
            ds: ds.clone(),
            offset,
            len,
        });
    }

    /// Asks the runtime to stop once this handler returns: remaining
    /// queued events are not executed. Used by workloads with a fixed
    /// duration.
    pub fn stop_runtime(&mut self) {
        self.effects.stop = true;
    }

    /// Records the completion of one end-to-end request with the given
    /// latency in cycles: the sample lands in the executing core's
    /// per-request latency histogram and its `completed_requests`
    /// counter, surfaced as
    /// [`RunReport::latency_p50`](crate::metrics::RunReport::latency_p50) /
    /// [`RunReport::latency_p99`](crate::metrics::RunReport::latency_p99) /
    /// [`RunReport::completed_requests`](crate::metrics::RunReport::completed_requests).
    ///
    /// This is the low-level hook; the typed stage layer calls it from
    /// `StageCtx::complete` with the time elapsed since the request's
    /// start stamp (the spawning handler's clock for spawned requests,
    /// the first dispatch for seeded/submitted ones — see
    /// `mely_core::stage`'s request-latency semantics). Raw-event
    /// applications measuring their own request boundaries can call it
    /// directly.
    pub fn complete_request(&mut self, latency_cycles: u64) {
        if self.effects.completed_first.is_none() {
            self.effects.completed_first = Some(latency_cycles);
        } else {
            self.effects.completed_rest.push(latency_cycles);
        }
    }

    /// Records the failure of one end-to-end request: the executing
    /// core's `failed_requests` counter grows, surfaced as
    /// [`RunReport::failed_requests`](crate::metrics::RunReport::failed_requests)
    /// and part of
    /// [`RunReport::offered_requests`](crate::metrics::RunReport::offered_requests).
    /// A failed request records no latency sample — the pair of this
    /// hook is [`Ctx::complete_request`], and each carried request
    /// should end in exactly one of the two. The canonical caller is a
    /// server whose client died mid-request (peer reset, EOF with a
    /// partial request buffered): the request was genuinely carried and
    /// genuinely failed, matching the fault model's accounting for
    /// requests lost to quarantined colors.
    pub fn fail_request(&mut self) {
        self.effects.failed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::dataset::DataSet;
    use std::sync::Arc;

    #[test]
    fn effects_are_buffered() {
        let mut fx = CtxEffects::default();
        let ds: DataSetRef = Arc::new(DataSet::new(0, 0, 128));
        {
            let mut ctx = Ctx::new(2, 42, &mut fx);
            assert_eq!(ctx.core(), 2);
            assert_eq!(ctx.now(), 42);
            ctx.register(Event::new(Color::new(1), 10));
            ctx.register_after(1_000, Event::new(Color::new(2), 20));
            ctx.charge(300);
            ctx.charge(200);
            ctx.touch(&ds);
            ctx.touch_range(&ds, 64, 32);
            ctx.complete_request(777);
            ctx.fail_request();
            ctx.stop_runtime();
        }
        assert_eq!(fx.registrations.len(), 1);
        assert_eq!(fx.delayed.len(), 1);
        assert_eq!(fx.delayed[0].0, 1_000);
        assert_eq!(fx.charged, 500);
        assert_eq!(fx.touches.len(), 2);
        assert_eq!(fx.touches[0].len, 128);
        assert_eq!(fx.touches[1].offset, 64);
        assert_eq!(fx.completions().collect::<Vec<_>>(), vec![777]);
        assert_eq!(fx.failed, 1);
        assert!(fx.stop);
    }

    #[test]
    fn touch_range_clips_to_region() {
        let mut fx = CtxEffects::default();
        let ds: DataSetRef = Arc::new(DataSet::new(0, 0, 100));
        {
            let mut ctx = Ctx::new(0, 0, &mut fx);
            ctx.touch_range(&ds, 90, 50); // clipped to 10
            ctx.touch_range(&ds, 200, 10); // fully out of range: dropped
            ctx.touch_range(&ds, 0, 0); // empty: dropped
        }
        assert_eq!(fx.touches.len(), 1);
        assert_eq!(fx.touches[0].offset, 90);
        assert_eq!(fx.touches[0].len, 10);
    }
}
