//! Per-core metrics and run reports.
//!
//! These counters are the runtime's "built-in monitoring facilities"
//! (paper Section IV-B) and carry exactly the quantities the paper's
//! evaluation reports: throughput (KEvents/s, Tables III–VI), time spent
//! locking (Table III), average steal cost and average stolen processing
//! time (Tables I, III, IV), and L2 cache misses per event (Tables V,
//! VI).

use std::fmt;
use std::hash::Hasher;

use fxhash::FxHasher;

use crate::color::Color;
use crate::fault::Fault;
use crate::steal::WsPolicy;

/// One step of the running Fx digest: folds `word` into `state` through
/// a fresh [`FxHasher`] so the digest stays order-sensitive (Fx's
/// rotate-xor-multiply is not commutative) while remaining a plain
/// `u64` that lives inside the `Copy` [`CoreMetrics`].
fn fx_fold(state: u64, word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(state);
    h.write_u64(word);
    h.finish()
}

/// Number of log2 latency buckets: bucket `b` holds samples whose bit
/// length is `b` (0, then `[2^(b-1), 2^b)`), so bucket 64 holds
/// everything from `2^63` up to `u64::MAX` — recording saturates there
/// instead of overflowing.
const LATENCY_BUCKETS: usize = 65;

/// A log2-bucketed histogram of per-request latencies in cycles.
///
/// Recording is one `leading_zeros` and one increment — cheap enough
/// for the dispatch path on both executors. Percentiles are read from
/// the bucket boundaries, so a reported quantile is an *upper bound*
/// with at most 2× resolution error — the right trade for a scheduler
/// metric whose interesting signal is orders of magnitude (queueing
/// collapse, steal storms), not single cycles.
///
/// # Examples
///
/// ```
/// use mely_core::metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [100u64, 110, 120, 5_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.50) <= h.percentile(0.99));
/// assert!(h.percentile(0.99) >= 5_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `sample`: its bit length.
    fn bucket_of(sample: u64) -> usize {
        (u64::BITS - sample.leading_zeros()) as usize
    }

    /// Records one latency sample in cycles.
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count = self.count.saturating_add(1);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count = self.count.saturating_add(other.count);
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `0.0..=1.0`); 0 for an empty histogram. Because
    /// the answer is a shared bucket boundary, quantiles are monotone:
    /// `percentile(0.50) <= percentile(0.99)` always holds.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(b);
            }
        }
        u64::MAX
    }

    /// Largest value a sample in bucket `b` can have.
    fn bucket_upper_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

/// Counters accumulated by one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMetrics {
    /// Events executed on this core.
    pub events_processed: u64,
    /// Cycles spent executing handlers (dispatch + handler body).
    pub busy_cycles: u64,
    /// Cycles spent waiting for spinlocks (own or remote).
    pub lock_wait_cycles: u64,
    /// Number of lock acquisitions.
    pub lock_ops: u64,
    /// Cycles spent idle (no events, no successful steal).
    pub idle_cycles: u64,
    /// Steal attempts initiated by this core (successful or not).
    pub steal_attempts: u64,
    /// Successful steals performed by this core.
    pub steals: u64,
    /// Cycles spent inside successful steal operations, from decision to
    /// migration complete (the paper's "stealing time").
    pub steal_cycles: u64,
    /// Cycles spent in steal attempts that found nothing.
    pub failed_steal_cycles: u64,
    /// Events migrated into this core by its steals.
    pub stolen_events: u64,
    /// Successful steals from an SMT sibling of this core
    /// ([`crate::steal::StealTier::Smt`]). The four per-tier counters
    /// partition `steals`; they are diagnostics and deliberately not
    /// part of [`RunReport::fingerprint`].
    pub steals_smt: u64,
    /// Successful steals from a core sharing a cache with this core
    /// ([`crate::steal::StealTier::Llc`]).
    pub steals_llc: u64,
    /// Successful steals from a same-socket core sharing no cache
    /// ([`crate::steal::StealTier::Socket`]).
    pub steals_socket: u64,
    /// Successful steals that crossed a socket
    /// ([`crate::steal::StealTier::Remote`]).
    pub steals_remote: u64,
    /// Declared processing cost of the event sets this core stole (the
    /// paper's "stolen time").
    pub stolen_cost_cycles: u64,
    /// Events this core registered (initial or from handlers).
    pub registered: u64,
    /// L2 cache misses attributed to this core (simulation only).
    pub l2_misses: u64,
    /// Cycles added by simulated memory accesses.
    pub mem_stall_cycles: u64,
    /// Events pushed into this core's lock-free injection inbox by
    /// cross-thread producers (threaded executor only).
    pub inbox_pushes: u64,
    /// Events this core drained out of its inbox.
    pub inbox_drained: u64,
    /// Non-empty inbox drains (each merges its batch under one lock
    /// acquisition).
    pub inbox_drain_batches: u64,
    /// Drained events whose color had been stolen between push and
    /// drain, re-routed through the color map.
    pub inbox_rerouted: u64,
    /// Inbox pushes that reused a recycled Treiber node instead of
    /// allocating (threaded executor only).
    pub inbox_node_reuse: u64,
    /// Color-queue creations that reused a pooled event buffer instead
    /// of allocating (Mely flavor only).
    pub queue_buf_reuse: u64,
    /// Requests completed on this core ([`crate::ctx::Ctx::complete_request`],
    /// reached through the stage layer's `StageCtx::complete`).
    pub completed_requests: u64,
    /// Rejected admission attempts (`try_inject` errors, plus one per
    /// infallible-inject event that failed its first attempt). Counted
    /// on producer threads; attributed to core 0.
    pub admission_rejects: u64,
    /// Events dropped by the [`crate::admission::AdmissionPolicy::Shed`]
    /// path (or dropped because the runtime stopped while a producer was
    /// blocked). Attributed to core 0.
    pub shed_requests: u64,
    /// The subset of `shed_requests` rejected by the per-color limit
    /// ([`crate::admission::OverloadReason::ColorHot`]).
    pub shed_by_color: u64,
    /// Contained faults recorded on this core: handler panics (organic
    /// or [`crate::fuzz::FaultPlan`]-injected), injected drops, and —
    /// attributed at join time — worker deaths. See [`crate::fault`].
    pub faults: u64,
    /// Requests that failed because the event carrying them faulted or
    /// was discarded by a quarantine drain. Together with
    /// `completed_requests` and `shed_requests` this closes the offered
    /// accounting: `offered = completed + failed + shed`.
    pub failed_requests: u64,
    /// Events discarded because their color was quarantined — queue
    /// drains on this core, plus (attributed to core 0) admission-side
    /// quarantine sheds.
    pub shed_by_fault: u64,
    /// Colors newly quarantined by faults on this core.
    pub quarantined_colors: u64,
    /// Per-request latency samples completed on this core.
    pub latency: LatencyHistogram,
    /// Order-sensitive Fx digest of the `(color, seq)` completion
    /// sequence this core executed — the raw material of
    /// [`RunReport::fingerprint`]. Updated by
    /// [`CoreMetrics::note_completion`] on every event execution.
    pub completion_digest: u64,
    /// Order-sensitive Fx digest of the fault sites this core hit
    /// (`(color, kind, seq)` per fault) — folded into
    /// [`RunReport::fingerprint`] so a chaos replay must reproduce not
    /// just the schedule but the exact fault schedule.
    pub fault_digest: u64,
}

impl CoreMetrics {
    /// Folds one event completion into this core's order-sensitive
    /// digest. Called by both executors at the moment an event's
    /// handler finishes; `seq` is the runtime's registration sequence
    /// number, so the digest captures *which* event ran, not just its
    /// color.
    pub fn note_completion(&mut self, color: Color, seq: u64) {
        self.completion_digest = fx_fold(
            fx_fold(self.completion_digest, u64::from(color.value())),
            seq,
        );
    }

    /// Attributes one successful steal to its
    /// [`crate::steal::StealTier`] counter. Called by both executors
    /// right after they count the steal itself, so the four tier
    /// counters always sum to `steals`.
    pub(crate) fn note_steal_tier(&mut self, tier: crate::steal::StealTier) {
        match tier {
            crate::steal::StealTier::Smt => self.steals_smt += 1,
            crate::steal::StealTier::Llc => self.steals_llc += 1,
            crate::steal::StealTier::Socket => self.steals_socket += 1,
            crate::steal::StealTier::Remote => self.steals_remote += 1,
        }
    }

    /// Counts one contained fault and folds its site into this core's
    /// fault digest. `kind_code` is the [`crate::fault::FaultKind`]'s
    /// stable small code; `seq` identifies the faulting event (0 for
    /// faults with no event, e.g. worker deaths).
    pub(crate) fn note_fault(&mut self, color: Option<Color>, kind_code: u64, seq: u64) {
        self.faults += 1;
        let color_word = color.map_or(u64::MAX, |c| u64::from(c.value()));
        self.fault_digest = fx_fold(
            fx_fold(fx_fold(self.fault_digest, color_word), kind_code),
            seq,
        );
    }
}

impl CoreMetrics {
    /// Adds another core's counters into this one.
    pub fn merge(&mut self, o: &CoreMetrics) {
        self.events_processed += o.events_processed;
        self.busy_cycles += o.busy_cycles;
        self.lock_wait_cycles += o.lock_wait_cycles;
        self.lock_ops += o.lock_ops;
        self.idle_cycles += o.idle_cycles;
        self.steal_attempts += o.steal_attempts;
        self.steals += o.steals;
        self.steal_cycles += o.steal_cycles;
        self.failed_steal_cycles += o.failed_steal_cycles;
        self.stolen_events += o.stolen_events;
        self.steals_smt += o.steals_smt;
        self.steals_llc += o.steals_llc;
        self.steals_socket += o.steals_socket;
        self.steals_remote += o.steals_remote;
        self.stolen_cost_cycles += o.stolen_cost_cycles;
        self.registered += o.registered;
        self.l2_misses += o.l2_misses;
        self.mem_stall_cycles += o.mem_stall_cycles;
        self.inbox_pushes += o.inbox_pushes;
        self.inbox_drained += o.inbox_drained;
        self.inbox_drain_batches += o.inbox_drain_batches;
        self.inbox_rerouted += o.inbox_rerouted;
        self.inbox_node_reuse += o.inbox_node_reuse;
        self.queue_buf_reuse += o.queue_buf_reuse;
        self.completed_requests += o.completed_requests;
        self.admission_rejects += o.admission_rejects;
        self.shed_requests += o.shed_requests;
        self.shed_by_color += o.shed_by_color;
        self.faults += o.faults;
        self.failed_requests += o.failed_requests;
        self.shed_by_fault += o.shed_by_fault;
        self.quarantined_colors += o.quarantined_colors;
        self.latency.merge(&o.latency);
        // Merging cores has no meaningful inter-core order, so the
        // digests combine commutatively; the order-sensitive run
        // identity is [`RunReport::fingerprint`], which folds the
        // per-core digests in core-index order instead.
        self.completion_digest = self.completion_digest.wrapping_add(o.completion_digest);
        self.fault_digest = self.fault_digest.wrapping_add(o.fault_digest);
    }
}

/// A compact, order-sensitive identity for "the same run".
///
/// The fingerprint folds together, with an Fx hash:
///
/// - each core's **completion digest** (the order-sensitive hash of the
///   `(color, seq)` event-completion sequence that core executed), in
///   core-index order, alongside that core's event count and **fault
///   digest** (the order-sensitive hash of its fault sites);
/// - the run's **structural counts**: events processed, events
///   registered, successful steals, completed requests, and the fault
///   totals (faults, failed requests, quarantine sheds).
///
/// Two runs with the same fingerprint executed the same events in the
/// same per-core order — which is what "replays bit-identically" means
/// for a scheduler. Deliberately **excluded**: anything a replay cannot
/// reproduce exactly or that carries no ordering information — wall
/// clock, cycle accounting (busy/idle/lock-wait), cache misses, and
/// latency percentiles. On the simulator those happen to be
/// deterministic too, but keeping them out lets a fingerprint survive
/// cost-model refinements that do not change scheduling order, and
/// gives the threaded executor's fingerprints the same meaning.
///
/// Produced by [`RunReport::fingerprint`]; `Display` renders the short
/// hex digest used in fuzz-failure reports (`seed 0x2a → a3f09b…`).
///
/// # Examples
///
/// ```
/// use mely_core::prelude::*;
///
/// let run = || {
///     let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
///     rt.register(Event::new(Color::new(1), 500));
///     rt.run().fingerprint()
/// };
/// let (a, b) = (run(), run());
/// assert_eq!(a, b, "identical runs have identical fingerprints");
/// assert_eq!(format!("{a}"), format!("{:016x}", a.as_u64()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunFingerprint(u64);

impl RunFingerprint {
    /// The raw 64-bit digest.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RunFingerprint {
    /// The short hex digest (16 lowercase hex digits).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for RunFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RunFingerprint({:016x})", self.0)
    }
}

/// Summary of a runtime execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    per_core: Vec<CoreMetrics>,
    wall_cycles: u64,
    freq_hz: u64,
    policy: WsPolicy,
    fault_log: Vec<Fault>,
}

impl RunReport {
    pub(crate) fn new(
        per_core: Vec<CoreMetrics>,
        wall_cycles: u64,
        freq_hz: u64,
        policy: WsPolicy,
    ) -> Self {
        RunReport {
            per_core,
            wall_cycles,
            freq_hz,
            policy,
            fault_log: Vec::new(),
        }
    }

    /// Attaches the run's recorded [`Fault`]s (capped; the counters are
    /// exact).
    pub(crate) fn with_fault_log(mut self, log: Vec<Fault>) -> Self {
        self.fault_log = log;
        self
    }

    /// Per-core counters.
    pub fn per_core(&self) -> &[CoreMetrics] {
        &self.per_core
    }

    /// Aggregated counters over all cores.
    pub fn total(&self) -> CoreMetrics {
        let mut t = CoreMetrics::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Elapsed time in cycles (virtual under simulation, measured under
    /// the threaded executor).
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Elapsed time in seconds at the machine's nominal frequency.
    pub fn wall_secs(&self) -> f64 {
        self.wall_cycles as f64 / self.freq_hz as f64
    }

    /// The workstealing policy the run used.
    pub fn policy(&self) -> WsPolicy {
        self.policy
    }

    /// Total events executed.
    pub fn events_processed(&self) -> u64 {
        self.total().events_processed
    }

    /// Throughput in thousands of events per second (the unit of Tables
    /// III–VI). Returns 0.0 for an empty run.
    pub fn kevents_per_sec(&self) -> f64 {
        let s = self.wall_secs();
        if s <= 0.0 {
            return 0.0;
        }
        self.events_processed() as f64 / s / 1e3
    }

    /// Fraction of total core time spent waiting on locks (the paper's
    /// "Locking time", Table III).
    pub fn lock_time_fraction(&self) -> f64 {
        let denom = self.wall_cycles as f64 * self.per_core.len() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        self.total().lock_wait_cycles as f64 / denom
    }

    /// Average cycles per successful steal (the paper's "stealing time" /
    /// "WS cost"). `None` when no steal succeeded.
    pub fn avg_steal_cycles(&self) -> Option<f64> {
        let t = self.total();
        (t.steals > 0).then(|| t.steal_cycles as f64 / t.steals as f64)
    }

    /// Average declared processing time of a stolen event set (the
    /// paper's "stolen time"). `None` when no steal succeeded.
    pub fn avg_stolen_cost(&self) -> Option<f64> {
        let t = self.total();
        (t.steals > 0).then(|| t.stolen_cost_cycles as f64 / t.steals as f64)
    }

    /// Successful steals per [`crate::steal::StealTier`], nearest tier
    /// first: `[smt, llc, socket, remote]`. The four entries partition
    /// [`CoreMetrics::steals`] (every successful steal lands in exactly
    /// one tier), so the sum equals `total().steals`.
    pub fn steals_by_tier(&self) -> [u64; 4] {
        let t = self.total();
        [t.steals_smt, t.steals_llc, t.steals_socket, t.steals_remote]
    }

    /// Successful steals from an SMT sibling.
    pub fn steals_smt(&self) -> u64 {
        self.total().steals_smt
    }

    /// Successful steals from a cache-sharing core.
    pub fn steals_llc(&self) -> u64 {
        self.total().steals_llc
    }

    /// Successful steals from a same-socket core sharing no cache.
    pub fn steals_socket(&self) -> u64 {
        self.total().steals_socket
    }

    /// Successful steals that crossed a socket.
    pub fn steals_remote(&self) -> u64 {
        self.total().steals_remote
    }

    /// Events injected through the lock-free inboxes (threaded executor;
    /// always 0 under simulation).
    pub fn inbox_pushes(&self) -> u64 {
        self.total().inbox_pushes
    }

    /// Events drained out of the inboxes into the per-core queues.
    pub fn inbox_drained(&self) -> u64 {
        self.total().inbox_drained
    }

    /// Mean events merged per non-empty inbox drain — each drain is one
    /// lock acquisition, so this is the producer-side lock amortization
    /// factor. `None` when nothing was drained.
    pub fn avg_inbox_drain_batch(&self) -> Option<f64> {
        let t = self.total();
        (t.inbox_drain_batches > 0).then(|| t.inbox_drained as f64 / t.inbox_drain_batches as f64)
    }

    /// Inbox pushes served by the node recycling pool instead of the
    /// allocator (threaded executor; 0 under simulation).
    pub fn inbox_node_reuse(&self) -> u64 {
        self.total().inbox_node_reuse
    }

    /// Color-queue creations served by the queue's buffer pool instead
    /// of the allocator (Mely flavor; 0 for Libasync).
    pub fn queue_buf_reuse(&self) -> u64 {
        self.total().queue_buf_reuse
    }

    /// Requests completed through the per-request latency pipeline
    /// (the stage layer's `StageCtx::complete`, or a raw handler calling
    /// [`crate::ctx::Ctx::complete_request`]). 0 for workloads that never
    /// open requests.
    pub fn completed_requests(&self) -> u64 {
        self.total().completed_requests
    }

    /// Median end-to-end request latency in cycles (upper bound of the
    /// log2 bucket holding the median sample); 0 when no request
    /// completed. Always `<=` [`RunReport::latency_p99`].
    pub fn latency_p50(&self) -> u64 {
        self.latency_histogram().percentile(0.50)
    }

    /// 99th-percentile end-to-end request latency in cycles; 0 when no
    /// request completed.
    pub fn latency_p99(&self) -> u64 {
        self.latency_histogram().percentile(0.99)
    }

    /// The merged per-request latency histogram over all cores.
    pub fn latency_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for c in &self.per_core {
            h.merge(&c.latency);
        }
        h
    }

    /// Goodput: requests that made it through admission *and* completed
    /// — the numerator of every overload-engineering plot. An alias of
    /// [`RunReport::completed_requests`], named for the offered-load
    /// accounting identity `offered = goodput + shed`.
    pub fn goodput(&self) -> u64 {
        self.completed_requests()
    }

    /// Offered load: completed requests, plus the requests shed at
    /// admission, plus the requests failed by faults. `goodput() /
    /// offered_requests()` is the fraction of offered load that
    /// survived overload control *and* fault containment; the identity
    /// `offered = goodput + failed + shed` always holds.
    pub fn offered_requests(&self) -> u64 {
        let t = self.total();
        t.completed_requests + t.shed_requests + t.failed_requests
    }

    /// Events dropped at the admission boundary by the shed path.
    pub fn shed_requests(&self) -> u64 {
        self.total().shed_requests
    }

    /// Sheds caused specifically by a hot color's per-color limit.
    pub fn shed_by_color(&self) -> u64 {
        self.total().shed_by_color
    }

    /// Rejected admission attempts (fallible and infallible paths; see
    /// [`CoreMetrics::admission_rejects`]).
    pub fn admission_rejects(&self) -> u64 {
        self.total().admission_rejects
    }

    /// Contained faults over the whole run: handler panics (organic or
    /// injected), injected drops, and worker deaths. See
    /// [`crate::fault`].
    pub fn faults(&self) -> u64 {
        self.total().faults
    }

    /// Requests that failed because their carrying event faulted or was
    /// discarded by a quarantine drain.
    pub fn failed_requests(&self) -> u64 {
        self.total().failed_requests
    }

    /// Events discarded because their color was quarantined (queue
    /// drains plus admission-side quarantine sheds).
    pub fn shed_by_fault(&self) -> u64 {
        self.total().shed_by_fault
    }

    /// Colors quarantined during this run.
    pub fn quarantined_colors(&self) -> u64 {
        self.total().quarantined_colors
    }

    /// The recorded [`Fault`]s of this run, in per-core recording order
    /// (capped at an internal limit; [`RunReport::faults`] stays exact
    /// past it). Empty when the run was fault-free.
    pub fn fault_log(&self) -> &[Fault] {
        &self.fault_log
    }

    /// The stable identity of "the same run": an order-sensitive Fx
    /// hash of the per-core event-completion digests plus the run's
    /// structural counts. See [`RunFingerprint`] for exactly what is
    /// covered (and what is deliberately excluded). Equal fingerprints
    /// mean the schedule replayed bit-identically; the schedule-fuzzing
    /// harness reports violations as `(seed, fingerprint)` pairs.
    pub fn fingerprint(&self) -> RunFingerprint {
        let mut h = FxHasher::default();
        h.write_u64(self.per_core.len() as u64);
        for c in &self.per_core {
            h.write_u64(c.completion_digest);
            h.write_u64(c.events_processed);
            h.write_u64(c.fault_digest);
        }
        let t = self.total();
        h.write_u64(t.events_processed);
        h.write_u64(t.registered);
        h.write_u64(t.steals);
        h.write_u64(t.completed_requests);
        h.write_u64(t.faults);
        h.write_u64(t.failed_requests);
        h.write_u64(t.shed_by_fault);
        RunFingerprint(h.finish())
    }

    /// L2 misses per processed event (Tables V and VI). Returns 0.0 when
    /// nothing was processed.
    pub fn l2_misses_per_event(&self) -> f64 {
        let t = self.total();
        if t.events_processed == 0 {
            return 0.0;
        }
        t.l2_misses as f64 / t.events_processed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(events: u64, lock: u64) -> CoreMetrics {
        CoreMetrics {
            events_processed: events,
            lock_wait_cycles: lock,
            ..CoreMetrics::default()
        }
    }

    #[test]
    fn totals_merge_cores() {
        let r = RunReport::new(
            vec![m(10, 100), m(20, 300)],
            1_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert_eq!(r.events_processed(), 30);
        assert_eq!(r.total().lock_wait_cycles, 400);
        assert_eq!(r.cores(), 2);
    }

    #[test]
    fn throughput_units() {
        // 1000 events in 1e9 cycles at 1 GHz = 1 second => 1 KEvents/s.
        let r = RunReport::new(
            vec![m(1_000, 0)],
            1_000_000_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert!((r.kevents_per_sec() - 1.0).abs() < 1e-9);
        assert!((r.wall_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lock_fraction_is_over_total_core_time() {
        // 2 cores, wall 1000 cycles => 2000 core-cycles; 400 locked = 20%.
        let r = RunReport::new(
            vec![m(1, 100), m(1, 300)],
            1_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert!((r.lock_time_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn steal_averages_none_without_steals() {
        let r = RunReport::new(vec![m(1, 0)], 100, 1_000, WsPolicy::base());
        assert!(r.avg_steal_cycles().is_none());
        assert!(r.avg_stolen_cost().is_none());
        assert_eq!(r.l2_misses_per_event(), 0.0);
    }

    #[test]
    fn steal_averages() {
        let c = CoreMetrics {
            events_processed: 4,
            steals: 2,
            steal_cycles: 300,
            stolen_cost_cycles: 5_000,
            l2_misses: 8,
            ..Default::default()
        };
        let r = RunReport::new(vec![c], 100, 1_000, WsPolicy::improved());
        assert_eq!(r.avg_steal_cycles().unwrap(), 150.0);
        assert_eq!(r.avg_stolen_cost().unwrap(), 2_500.0);
        assert_eq!(r.l2_misses_per_event(), 2.0);
    }

    #[test]
    fn inbox_counters_merge_and_average() {
        let a = CoreMetrics {
            inbox_pushes: 10,
            inbox_drained: 9,
            inbox_drain_batches: 3,
            inbox_rerouted: 1,
            inbox_node_reuse: 7,
            queue_buf_reuse: 4,
            ..Default::default()
        };
        let b = CoreMetrics {
            inbox_pushes: 2,
            inbox_drained: 3,
            inbox_drain_batches: 1,
            inbox_node_reuse: 1,
            queue_buf_reuse: 2,
            ..Default::default()
        };
        let r = RunReport::new(vec![a, b], 100, 1_000, WsPolicy::off());
        assert_eq!(r.inbox_pushes(), 12);
        assert_eq!(r.inbox_drained(), 12);
        assert_eq!(r.total().inbox_rerouted, 1);
        assert_eq!(r.inbox_node_reuse(), 8);
        assert_eq!(r.queue_buf_reuse(), 6);
        assert_eq!(r.avg_inbox_drain_batch().unwrap(), 3.0);
        let quiet = RunReport::new(vec![m(1, 0)], 100, 1_000, WsPolicy::off());
        assert!(quiet.avg_inbox_drain_batch().is_none());
    }

    #[test]
    fn overload_counters_merge_and_derive_goodput() {
        let a = CoreMetrics {
            completed_requests: 10,
            shed_requests: 3,
            shed_by_color: 2,
            admission_rejects: 5,
            ..Default::default()
        };
        let b = CoreMetrics {
            completed_requests: 5,
            ..Default::default()
        };
        let r = RunReport::new(vec![a, b], 100, 1_000, WsPolicy::off());
        assert_eq!(r.goodput(), 15);
        assert_eq!(r.goodput(), r.completed_requests());
        assert_eq!(r.shed_requests(), 3);
        assert_eq!(r.shed_by_color(), 2);
        assert_eq!(r.admission_rejects(), 5);
        assert_eq!(r.offered_requests(), r.goodput() + r.shed_requests());
    }

    #[test]
    fn fault_counters_merge_and_close_the_offered_identity() {
        use crate::color::Color;
        let mut a = CoreMetrics {
            completed_requests: 10,
            shed_requests: 3,
            failed_requests: 2,
            shed_by_fault: 4,
            quarantined_colors: 1,
            ..Default::default()
        };
        a.note_fault(Some(Color::new(9)), 1, 42);
        a.note_fault(None, 4, 0);
        let b = CoreMetrics {
            completed_requests: 5,
            failed_requests: 1,
            ..Default::default()
        };
        let r = RunReport::new(vec![a, b], 100, 1_000, WsPolicy::off());
        assert_eq!(r.faults(), 2);
        assert_eq!(r.failed_requests(), 3);
        assert_eq!(r.shed_by_fault(), 4);
        assert_eq!(r.quarantined_colors(), 1);
        assert_eq!(
            r.offered_requests(),
            r.goodput() + r.failed_requests() + r.shed_requests()
        );
        assert!(r.fault_log().is_empty(), "no log attached");
    }

    #[test]
    fn fault_digest_is_order_sensitive_and_covered_by_the_fingerprint() {
        use crate::color::Color;
        let mut a = CoreMetrics::default();
        a.note_fault(Some(Color::new(1)), 1, 10);
        a.note_fault(Some(Color::new(2)), 2, 11);
        let mut b = CoreMetrics::default();
        b.note_fault(Some(Color::new(2)), 2, 11);
        b.note_fault(Some(Color::new(1)), 1, 10);
        assert_ne!(a.fault_digest, b.fault_digest, "order must matter");
        let ra = RunReport::new(vec![a], 100, 1_000, WsPolicy::off());
        let rb = RunReport::new(vec![b], 100, 1_000, WsPolicy::off());
        assert_ne!(
            ra.fingerprint(),
            rb.fingerprint(),
            "a different fault schedule is a different run"
        );
    }

    #[test]
    fn empty_run_has_zero_throughput() {
        let r = RunReport::new(vec![], 0, 1_000, WsPolicy::off());
        assert_eq!(r.kevents_per_sec(), 0.0);
        assert_eq!(r.lock_time_fraction(), 0.0);
        assert_eq!(r.completed_requests(), 0);
        assert_eq!(r.latency_p50(), 0);
        assert_eq!(r.latency_p99(), 0);
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        assert_eq!(h.count(), 1);
        // 1000 has bit length 10: bucket upper bound 2^10 - 1.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 1_023, "q={q}");
        }
        // A zero-latency sample lands in the zero bucket.
        let mut z = LatencyHistogram::new();
        z.record(0);
        assert_eq!(z.percentile(0.5), 0);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn saturating_samples_land_in_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), u64::MAX, "top bucket saturates");
        // The exact power of two below sits in the bucket beneath.
        let mut p = LatencyHistogram::new();
        p.record((1u64 << 63) - 1);
        assert_eq!(p.percentile(1.0), (1u64 << 63) - 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 3, 7, 100, 5_000, 5_001, 1_000_000] {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 >= 1_000_000, "p99 must cover the max sample's bucket");
        assert!(p50 >= 7, "p50 must cover the median sample");
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn histogram_merge_adds_counts_and_report_merges_cores() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(1.0) >= 1_000_000);

        let mut la = LatencyHistogram::new();
        la.record(100);
        let mut lb = LatencyHistogram::new();
        lb.record(200);
        let ca = CoreMetrics {
            completed_requests: 1,
            latency: la,
            ..Default::default()
        };
        let cb = CoreMetrics {
            completed_requests: 1,
            latency: lb,
            ..Default::default()
        };
        let r = RunReport::new(vec![ca, cb], 100, 1_000, WsPolicy::off());
        assert_eq!(r.completed_requests(), 2);
        assert_eq!(r.latency_histogram().count(), 2);
        assert!(r.latency_p50() <= r.latency_p99());
        assert!(r.latency_p99() >= 200);
    }

    #[test]
    fn completion_digest_is_order_sensitive() {
        use crate::color::Color;
        let mut a = CoreMetrics::default();
        a.note_completion(Color::new(1), 0);
        a.note_completion(Color::new(2), 1);
        let mut b = CoreMetrics::default();
        b.note_completion(Color::new(2), 1);
        b.note_completion(Color::new(1), 0);
        assert_ne!(
            a.completion_digest, b.completion_digest,
            "swapped completion order must change the digest"
        );
        let mut c = CoreMetrics::default();
        c.note_completion(Color::new(1), 0);
        c.note_completion(Color::new(2), 1);
        assert_eq!(a.completion_digest, c.completion_digest);
    }

    #[test]
    fn fingerprint_distinguishes_core_placement_not_wall_clock() {
        use crate::color::Color;
        let mut on_zero = CoreMetrics {
            events_processed: 1,
            ..Default::default()
        };
        on_zero.note_completion(Color::new(5), 0);
        let idle = CoreMetrics::default();

        // Same completions on core 0 vs core 1: different runs.
        let a = RunReport::new(vec![on_zero, idle], 100, 1_000, WsPolicy::off());
        let b = RunReport::new(vec![idle, on_zero], 100, 1_000, WsPolicy::off());
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Different wall clock, same schedule: same run identity.
        let c = RunReport::new(vec![on_zero, idle], 9_999, 1_000, WsPolicy::off());
        assert_eq!(a.fingerprint(), c.fingerprint());

        // Display is the 16-digit hex digest.
        let fp = a.fingerprint();
        let s = fp.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|ch| ch.is_ascii_hexdigit()));
        assert_eq!(u64::from_str_radix(&s, 16).unwrap(), fp.as_u64());
    }
}
