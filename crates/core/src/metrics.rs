//! Per-core metrics and run reports.
//!
//! These counters are the runtime's "built-in monitoring facilities"
//! (paper Section IV-B) and carry exactly the quantities the paper's
//! evaluation reports: throughput (KEvents/s, Tables III–VI), time spent
//! locking (Table III), average steal cost and average stolen processing
//! time (Tables I, III, IV), and L2 cache misses per event (Tables V,
//! VI).

use crate::steal::WsPolicy;

/// Counters accumulated by one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMetrics {
    /// Events executed on this core.
    pub events_processed: u64,
    /// Cycles spent executing handlers (dispatch + handler body).
    pub busy_cycles: u64,
    /// Cycles spent waiting for spinlocks (own or remote).
    pub lock_wait_cycles: u64,
    /// Number of lock acquisitions.
    pub lock_ops: u64,
    /// Cycles spent idle (no events, no successful steal).
    pub idle_cycles: u64,
    /// Steal attempts initiated by this core (successful or not).
    pub steal_attempts: u64,
    /// Successful steals performed by this core.
    pub steals: u64,
    /// Cycles spent inside successful steal operations, from decision to
    /// migration complete (the paper's "stealing time").
    pub steal_cycles: u64,
    /// Cycles spent in steal attempts that found nothing.
    pub failed_steal_cycles: u64,
    /// Events migrated into this core by its steals.
    pub stolen_events: u64,
    /// Declared processing cost of the event sets this core stole (the
    /// paper's "stolen time").
    pub stolen_cost_cycles: u64,
    /// Events this core registered (initial or from handlers).
    pub registered: u64,
    /// L2 cache misses attributed to this core (simulation only).
    pub l2_misses: u64,
    /// Cycles added by simulated memory accesses.
    pub mem_stall_cycles: u64,
    /// Events pushed into this core's lock-free injection inbox by
    /// cross-thread producers (threaded executor only).
    pub inbox_pushes: u64,
    /// Events this core drained out of its inbox.
    pub inbox_drained: u64,
    /// Non-empty inbox drains (each merges its batch under one lock
    /// acquisition).
    pub inbox_drain_batches: u64,
    /// Drained events whose color had been stolen between push and
    /// drain, re-routed through the color map.
    pub inbox_rerouted: u64,
    /// Inbox pushes that reused a recycled Treiber node instead of
    /// allocating (threaded executor only).
    pub inbox_node_reuse: u64,
    /// Color-queue creations that reused a pooled event buffer instead
    /// of allocating (Mely flavor only).
    pub queue_buf_reuse: u64,
}

impl CoreMetrics {
    /// Adds another core's counters into this one.
    pub fn merge(&mut self, o: &CoreMetrics) {
        self.events_processed += o.events_processed;
        self.busy_cycles += o.busy_cycles;
        self.lock_wait_cycles += o.lock_wait_cycles;
        self.lock_ops += o.lock_ops;
        self.idle_cycles += o.idle_cycles;
        self.steal_attempts += o.steal_attempts;
        self.steals += o.steals;
        self.steal_cycles += o.steal_cycles;
        self.failed_steal_cycles += o.failed_steal_cycles;
        self.stolen_events += o.stolen_events;
        self.stolen_cost_cycles += o.stolen_cost_cycles;
        self.registered += o.registered;
        self.l2_misses += o.l2_misses;
        self.mem_stall_cycles += o.mem_stall_cycles;
        self.inbox_pushes += o.inbox_pushes;
        self.inbox_drained += o.inbox_drained;
        self.inbox_drain_batches += o.inbox_drain_batches;
        self.inbox_rerouted += o.inbox_rerouted;
        self.inbox_node_reuse += o.inbox_node_reuse;
        self.queue_buf_reuse += o.queue_buf_reuse;
    }
}

/// Summary of a runtime execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    per_core: Vec<CoreMetrics>,
    wall_cycles: u64,
    freq_hz: u64,
    policy: WsPolicy,
}

impl RunReport {
    pub(crate) fn new(
        per_core: Vec<CoreMetrics>,
        wall_cycles: u64,
        freq_hz: u64,
        policy: WsPolicy,
    ) -> Self {
        RunReport {
            per_core,
            wall_cycles,
            freq_hz,
            policy,
        }
    }

    /// Per-core counters.
    pub fn per_core(&self) -> &[CoreMetrics] {
        &self.per_core
    }

    /// Aggregated counters over all cores.
    pub fn total(&self) -> CoreMetrics {
        let mut t = CoreMetrics::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Elapsed time in cycles (virtual under simulation, measured under
    /// the threaded executor).
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Elapsed time in seconds at the machine's nominal frequency.
    pub fn wall_secs(&self) -> f64 {
        self.wall_cycles as f64 / self.freq_hz as f64
    }

    /// The workstealing policy the run used.
    pub fn policy(&self) -> WsPolicy {
        self.policy
    }

    /// Total events executed.
    pub fn events_processed(&self) -> u64 {
        self.total().events_processed
    }

    /// Throughput in thousands of events per second (the unit of Tables
    /// III–VI). Returns 0.0 for an empty run.
    pub fn kevents_per_sec(&self) -> f64 {
        let s = self.wall_secs();
        if s <= 0.0 {
            return 0.0;
        }
        self.events_processed() as f64 / s / 1e3
    }

    /// Fraction of total core time spent waiting on locks (the paper's
    /// "Locking time", Table III).
    pub fn lock_time_fraction(&self) -> f64 {
        let denom = self.wall_cycles as f64 * self.per_core.len() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        self.total().lock_wait_cycles as f64 / denom
    }

    /// Average cycles per successful steal (the paper's "stealing time" /
    /// "WS cost"). `None` when no steal succeeded.
    pub fn avg_steal_cycles(&self) -> Option<f64> {
        let t = self.total();
        (t.steals > 0).then(|| t.steal_cycles as f64 / t.steals as f64)
    }

    /// Average declared processing time of a stolen event set (the
    /// paper's "stolen time"). `None` when no steal succeeded.
    pub fn avg_stolen_cost(&self) -> Option<f64> {
        let t = self.total();
        (t.steals > 0).then(|| t.stolen_cost_cycles as f64 / t.steals as f64)
    }

    /// Events injected through the lock-free inboxes (threaded executor;
    /// always 0 under simulation).
    pub fn inbox_pushes(&self) -> u64 {
        self.total().inbox_pushes
    }

    /// Events drained out of the inboxes into the per-core queues.
    pub fn inbox_drained(&self) -> u64 {
        self.total().inbox_drained
    }

    /// Mean events merged per non-empty inbox drain — each drain is one
    /// lock acquisition, so this is the producer-side lock amortization
    /// factor. `None` when nothing was drained.
    pub fn avg_inbox_drain_batch(&self) -> Option<f64> {
        let t = self.total();
        (t.inbox_drain_batches > 0).then(|| t.inbox_drained as f64 / t.inbox_drain_batches as f64)
    }

    /// Inbox pushes served by the node recycling pool instead of the
    /// allocator (threaded executor; 0 under simulation).
    pub fn inbox_node_reuse(&self) -> u64 {
        self.total().inbox_node_reuse
    }

    /// Color-queue creations served by the queue's buffer pool instead
    /// of the allocator (Mely flavor; 0 for Libasync).
    pub fn queue_buf_reuse(&self) -> u64 {
        self.total().queue_buf_reuse
    }

    /// L2 misses per processed event (Tables V and VI). Returns 0.0 when
    /// nothing was processed.
    pub fn l2_misses_per_event(&self) -> f64 {
        let t = self.total();
        if t.events_processed == 0 {
            return 0.0;
        }
        t.l2_misses as f64 / t.events_processed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(events: u64, lock: u64) -> CoreMetrics {
        CoreMetrics {
            events_processed: events,
            lock_wait_cycles: lock,
            ..CoreMetrics::default()
        }
    }

    #[test]
    fn totals_merge_cores() {
        let r = RunReport::new(
            vec![m(10, 100), m(20, 300)],
            1_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert_eq!(r.events_processed(), 30);
        assert_eq!(r.total().lock_wait_cycles, 400);
        assert_eq!(r.cores(), 2);
    }

    #[test]
    fn throughput_units() {
        // 1000 events in 1e9 cycles at 1 GHz = 1 second => 1 KEvents/s.
        let r = RunReport::new(
            vec![m(1_000, 0)],
            1_000_000_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert!((r.kevents_per_sec() - 1.0).abs() < 1e-9);
        assert!((r.wall_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lock_fraction_is_over_total_core_time() {
        // 2 cores, wall 1000 cycles => 2000 core-cycles; 400 locked = 20%.
        let r = RunReport::new(
            vec![m(1, 100), m(1, 300)],
            1_000,
            1_000_000_000,
            WsPolicy::off(),
        );
        assert!((r.lock_time_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn steal_averages_none_without_steals() {
        let r = RunReport::new(vec![m(1, 0)], 100, 1_000, WsPolicy::base());
        assert!(r.avg_steal_cycles().is_none());
        assert!(r.avg_stolen_cost().is_none());
        assert_eq!(r.l2_misses_per_event(), 0.0);
    }

    #[test]
    fn steal_averages() {
        let c = CoreMetrics {
            events_processed: 4,
            steals: 2,
            steal_cycles: 300,
            stolen_cost_cycles: 5_000,
            l2_misses: 8,
            ..Default::default()
        };
        let r = RunReport::new(vec![c], 100, 1_000, WsPolicy::improved());
        assert_eq!(r.avg_steal_cycles().unwrap(), 150.0);
        assert_eq!(r.avg_stolen_cost().unwrap(), 2_500.0);
        assert_eq!(r.l2_misses_per_event(), 2.0);
    }

    #[test]
    fn inbox_counters_merge_and_average() {
        let a = CoreMetrics {
            inbox_pushes: 10,
            inbox_drained: 9,
            inbox_drain_batches: 3,
            inbox_rerouted: 1,
            inbox_node_reuse: 7,
            queue_buf_reuse: 4,
            ..Default::default()
        };
        let b = CoreMetrics {
            inbox_pushes: 2,
            inbox_drained: 3,
            inbox_drain_batches: 1,
            inbox_node_reuse: 1,
            queue_buf_reuse: 2,
            ..Default::default()
        };
        let r = RunReport::new(vec![a, b], 100, 1_000, WsPolicy::off());
        assert_eq!(r.inbox_pushes(), 12);
        assert_eq!(r.inbox_drained(), 12);
        assert_eq!(r.total().inbox_rerouted, 1);
        assert_eq!(r.inbox_node_reuse(), 8);
        assert_eq!(r.queue_buf_reuse(), 6);
        assert_eq!(r.avg_inbox_drain_batch().unwrap(), 3.0);
        let quiet = RunReport::new(vec![m(1, 0)], 100, 1_000, WsPolicy::off());
        assert!(quiet.avg_inbox_drain_batch().is_none());
    }

    #[test]
    fn empty_run_has_zero_throughput() {
        let r = RunReport::new(vec![], 0, 1_000, WsPolicy::off());
        assert_eq!(r.kevents_per_sec(), 0.0);
        assert_eq!(r.lock_time_fraction(), 0.0);
    }
}
