//! Spinlocks for the threaded executor.
//!
//! The paper's runtimes protect each core's event queues with a spinlock
//! ("there is no interest in yielding cores (only one thread per core)",
//! Section II-A) and carefully pad private data structures to avoid false
//! sharing (Section IV-C). [`SpinLock`] follows both: a test-and-test-
//! and-set lock on a cache-padded flag, and a guard that reports how long
//! the acquisition spun so the runtime can account "locking time"
//! (Table III).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam_utils::CachePadded;

use crate::cycles;

/// A cache-padded test-and-test-and-set spinlock.
///
/// # Examples
///
/// ```
/// use mely_core::sync::SpinLock;
///
/// let lock = SpinLock::new(0u64);
/// {
///     let mut g = lock.lock();
///     *g += 1;
/// }
/// assert_eq!(*lock.lock(), 1);
/// ```
#[derive(Debug)]
pub struct SpinLock<T> {
    flag: CachePadded<AtomicBool>,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T`; sharing the lock
// across threads only requires the protected value to be Send.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard for [`SpinLock`]; reports the cycles spent spinning.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
    waited: u64,
}

impl<T> SpinLock<T> {
    /// Creates an unlocked lock around `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            flag: CachePadded::new(AtomicBool::new(false)),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning as needed.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        // Fast path: uncontended.
        if self
            .flag
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return SpinGuard {
                lock: self,
                waited: 0,
            };
        }
        let start = cycles::now();
        loop {
            // Test-and-test-and-set: spin on a read to avoid bouncing the
            // line in exclusive state.
            while self.flag.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            if self
                .flag
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard {
                    lock: self,
                    waited: cycles::now().wrapping_sub(start),
                };
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        self.flag
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| SpinGuard {
                lock: self,
                waited: 0,
            })
    }

    /// Mutable access without locking (requires `&mut self`, hence no
    /// concurrent holders).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<'a, T> SpinGuard<'a, T> {
    /// Cycles this acquisition spent waiting for the lock.
    pub fn waited_cycles(&self) -> u64 {
        self.waited
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.flag.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increments_under_contention() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *l.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() = 7;
        assert_eq!(*lock.lock(), 7);
    }

    #[test]
    fn uncontended_acquisition_reports_zero_wait() {
        let lock = SpinLock::new(());
        assert_eq!(lock.lock().waited_cycles(), 0);
    }
}
