//! The typed stage-graph application API.
//!
//! The paper's programming model is "events = handler pointer +
//! continuation" with colors for mutual exclusion. The raw [`Event`]
//! API exposes that model directly — and remains public as the
//! low-level layer — but applications written against it hand-allocate
//! `u16` colors, wire `HandlerId`s manually, and smuggle payloads
//! through boxed `FnOnce` captures at every chain step. This module is
//! the typed layer on top:
//!
//! - a [`Stage`] is a node of the application's processing graph with
//!   an associated message type ([`Stage::In`]); its [`StageSpec`]
//!   carries the handler annotation (name, cost, penalty,
//!   [`CostSource`](crate::handler::CostSource)) *and* the stage's
//!   coloring discipline (serial, inherited, keyed, or shared with
//!   another stage);
//! - a [`PipelineBuilder`] assembles stages into an installable
//!   [`Pipeline`] (a [`Service`]), registering every handler spec
//!   automatically and allocating colors through the collision-checked
//!   [`ColorSpace`] allocator — no hand-picked `u16`s;
//! - inside a handler, [`StageCtx::to`] emits a typed message to the
//!   next stage (the event's cost and penalty come from that stage's
//!   spec; the color follows the target's coloring, with
//!   [`StageCtx::to_colored`] for explicit re-coloring), and
//!   [`StageCtx::complete`] finishes a request — stamping its
//!   end-to-end latency into the per-request histogram surfaced as
//!   [`RunReport::latency_p50`](crate::metrics::RunReport::latency_p50) /
//!   [`RunReport::latency_p99`](crate::metrics::RunReport::latency_p99) /
//!   [`RunReport::completed_requests`](crate::metrics::RunReport::completed_requests).
//!
//! A pipeline never names a concrete executor, so the same stage graph
//! runs unmodified on the simulator and on threads, like every other
//! [`Service`].
//!
//! # Request latency semantics
//!
//! Every request carries one start stamp:
//!
//! - [`StageCtx::spawn`] stamps the **spawning handler's clock**, so
//!   the request's latency includes the queueing delay before its
//!   first stage executes (a poll loop spawning per-readiness requests
//!   makes downstream queueing collapse visible);
//! - seeds ([`PipelineBuilder::seed`]) and external submissions
//!   ([`StageSender::submit`]) are stamped when their first handler
//!   begins executing — there is no executor clock to read outside a
//!   handler, so cross-thread submission latency starts at first
//!   dispatch.
//!
//! [`StageCtx::to`] forwards the running request to the next stage;
//! [`StageCtx::complete`] closes it, recording `now - start` (virtual
//! cycles under simulation — deterministic — and calibrated
//! cycle-counter cycles under threads). A request that is never
//! completed (e.g. a poll loop's self-message) records nothing.
//!
//! # Examples
//!
//! ```
//! use mely_core::prelude::*;
//!
//! struct Double(u64);
//! struct Emit;
//! struct Sum;
//!
//! impl Stage for Emit {
//!     type In = u64;
//!     fn spec(&self) -> StageSpec<u64> {
//!         StageSpec::new("Emit").cost(500).keyed(|&v| v)
//!     }
//!     fn handle(&self, ctx: &mut StageCtx<'_, '_>, v: u64) {
//!         ctx.to::<Sum>(Double(v * 2));
//!     }
//! }
//!
//! impl Stage for Sum {
//!     type In = Double;
//!     fn spec(&self) -> StageSpec<Double> {
//!         StageSpec::new("Sum").cost(200)
//!     }
//!     fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Double) {
//!         ctx.complete(msg.0);
//!     }
//! }
//!
//! for kind in [ExecKind::Sim, ExecKind::Threaded] {
//!     let mut builder = PipelineBuilder::new("doubler").stage(Emit).stage(Sum);
//!     let outputs = builder.collect::<u64>();
//!     let mut rt = RuntimeBuilder::new().cores(2).build(kind);
//!     rt.install(builder.seed::<Emit>(3).seed::<Emit>(4).build());
//!     let report = rt.run();
//!     assert_eq!(report.events_processed(), 4);
//!     assert_eq!(report.completed_requests(), 2);
//!     assert!(report.latency_p50() <= report.latency_p99());
//!     let mut got = outputs.take();
//!     got.sort_unstable();
//!     assert_eq!(got, vec![6, 8]);
//! }
//! ```

use std::any::{Any, TypeId};
use std::fmt;
use std::sync::Arc;

use fxhash::FxHashMap;
use parking_lot::Mutex;

use crate::admission::{Admitted, Overload};
use crate::color::{Color, ColorRange, ColorSpace};
use crate::ctx::Ctx;
use crate::event::Event;
use crate::exec::{Executor, Injector, Service};
use crate::handler::{HandlerId, HandlerSpec};

/// A typed node of the application's stage graph.
///
/// The stage *instance* holds the stage's state (shared state goes in
/// `Arc`s, exactly as with raw event closures); [`Stage::handle`] is
/// invoked with a `&self` borrow, so per-request mutation uses interior
/// mutability — the color discipline, not the borrow checker, is what
/// serializes same-color executions.
pub trait Stage: Send + Sync + Sized + 'static {
    /// The message type this stage consumes.
    type In: Send + 'static;

    /// The stage's description: handler annotation (name, cost,
    /// penalty, cost source) plus coloring discipline. Registered
    /// automatically by [`PipelineBuilder::stage`]; takes `&self` so
    /// costs can derive from the instance's configuration (e.g. a
    /// chunk-size-dependent crypto cost).
    fn spec(&self) -> StageSpec<Self::In>;

    /// Processes one message. Emit follow-ups with [`StageCtx::to`] /
    /// [`StageCtx::spawn`], finish the request with
    /// [`StageCtx::complete`].
    fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Self::In);
}

/// How a stage's events are colored.
#[derive(Clone, Copy)]
enum Coloring<M> {
    /// One color for the whole stage, allocated by the pipeline's
    /// [`ColorSpace`]: every message to this stage serializes.
    Serial,
    /// Same color as the emitting event (or an explicit
    /// [`StageCtx::to_colored`] / [`PipelineBuilder::seed_colored`]).
    Inherit,
    /// Hashed per message into [`ColorRange::STAGE_KEYED`] (disjoint
    /// from the serial-allocation plane): messages with equal keys
    /// serialize, different keys parallelize (up to hash collisions,
    /// which also only serialize).
    Keyed(fn(&M) -> u64),
    /// The serial color of another stage (e.g. the paper's
    /// `RegisterFdInEpoll` colored like `Epoll`).
    SameAs(TypeId, &'static str),
}

/// Static description of a [`Stage`]: the handler annotation the
/// runtime schedules by, plus the coloring discipline.
///
/// # Examples
///
/// ```
/// use mely_core::stage::StageSpec;
///
/// struct Msg {
///     conn: u64,
/// }
/// // A per-connection handler: 22 Kcycles, mild steal penalty, colored
/// // by connection id.
/// let spec: StageSpec<Msg> = StageSpec::new("ReadRequest")
///     .cost(22_000)
///     .penalty(4)
///     .keyed(|m| m.conn);
/// assert_eq!(spec.handler().avg_cost, 22_000);
/// ```
pub struct StageSpec<M> {
    handler: HandlerSpec,
    coloring: Coloring<M>,
}

impl<M> StageSpec<M> {
    /// A serial stage named `name` with cost 0, penalty 1 and annotated
    /// costs — serial is the default because it is always safe; opt
    /// into parallelism with [`StageSpec::keyed`] or
    /// [`StageSpec::inherit_color`].
    pub fn new(name: impl Into<String>) -> Self {
        StageSpec {
            handler: HandlerSpec::new(name),
            coloring: Coloring::Serial,
        }
    }

    /// Sets the annotated average cost in cycles.
    pub fn cost(mut self, cycles: u64) -> Self {
        self.handler = self.handler.cost(cycles);
        self
    }

    /// Sets the workstealing penalty (values below 1 clamp to 1).
    pub fn penalty(mut self, penalty: u32) -> Self {
        self.handler = self.handler.penalty(penalty);
        self
    }

    /// Switches the handler to measured (EWMA) cost estimation.
    pub fn measured(mut self) -> Self {
        self.handler = self.handler.measured();
        self
    }

    /// Events to this stage keep the color of the emitting event.
    pub fn inherit_color(mut self) -> Self {
        self.coloring = Coloring::Inherit;
        self
    }

    /// Events to this stage are colored by hashing `key(&msg)` into
    /// [`ColorRange::STAGE_KEYED`] — the keyed plane, disjoint from
    /// the serial allocator's plane: equal keys serialize, distinct
    /// keys parallelize, and a keyed color can never land on another
    /// stage's allocated serial color.
    pub fn keyed(mut self, key: fn(&M) -> u64) -> Self {
        self.coloring = Coloring::Keyed(key);
        self
    }

    /// Events to this stage use stage `S`'s serial color (`S` must be a
    /// serial stage registered in the same pipeline) — the paper's
    /// "colored like Epoll in order to manage concurrency" idiom.
    pub fn share_color_with<S: Stage>(mut self) -> Self {
        self.coloring = Coloring::SameAs(TypeId::of::<S>(), std::any::type_name::<S>());
        self
    }

    /// The handler annotation this spec registers.
    pub fn handler(&self) -> &HandlerSpec {
        &self.handler
    }
}

impl<M> fmt::Debug for StageSpec<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageSpec")
            .field("handler", &self.handler)
            .field(
                "coloring",
                &match self.coloring {
                    Coloring::Serial => "serial",
                    Coloring::Inherit => "inherit",
                    Coloring::Keyed(_) => "keyed",
                    Coloring::SameAs(_, name) => name,
                },
            )
            .finish()
    }
}

/// The per-request token threaded through a stage chain: the cycle
/// stamp of the request's first dispatch (`UNSET` until then).
#[derive(Clone, Copy)]
struct ReqToken {
    t0: u64,
}

impl ReqToken {
    const UNSET: u64 = u64::MAX;

    fn fresh() -> Self {
        ReqToken { t0: Self::UNSET }
    }

    fn stamped(self, now: u64) -> Self {
        if self.t0 == Self::UNSET {
            ReqToken { t0: now }
        } else {
            self
        }
    }
}

/// The typed per-stage data behind an [`Entry`]: the stage instance and
/// its coloring, recovered by a `TypeId`-checked downcast at emit time.
struct Meta<S: Stage> {
    stage: S,
    coloring: Coloring<S::In>,
}

/// One stage's routing entry.
struct Entry {
    handler: HandlerId,
    /// Resolved serial color (`Serial` and `SameAs` stages).
    color: Option<Color>,
    /// `Arc<Meta<S>>`, keyed by `TypeId::of::<S>()`.
    meta: Arc<dyn Any + Send + Sync>,
    type_name: &'static str,
}

/// The installed pipeline's dispatch table, shared by every in-flight
/// event closure.
///
/// Entries are a linear-scanned `Vec`: pipelines have a handful of
/// stages, and comparing a few `TypeId`s beats hashing one on the
/// per-event emit path (the `micro_stage` bench gates this path at
/// ≤10 % over raw closure chains).
struct Router {
    /// Stage `TypeId`s, scanned densely (16-byte stride) ...
    ids: Vec<TypeId>,
    /// ... indexing into the parallel entry table.
    entries: Vec<Entry>,
    /// `TypeId::of::<O>() -> Arc<Mutex<Vec<O>>>` completion sinks.
    sinks: FxHashMap<TypeId, Arc<dyn Any + Send + Sync>>,
}

impl Router {
    #[inline]
    fn entry<N: Stage>(&self) -> &Entry {
        let t = TypeId::of::<N>();
        self.ids
            .iter()
            .position(|id| *id == t)
            .map(|i| &self.entries[i])
            .unwrap_or_else(|| {
                panic!(
                    "stage `{}` is not registered in this pipeline",
                    std::any::type_name::<N>()
                )
            })
    }

    /// The typed per-stage data of `N`'s entry. Borrow-based: the emit
    /// and execute paths never clone the meta `Arc` (refcount traffic
    /// is measurable at per-event rates).
    #[inline]
    fn meta<'r, N: Stage>(&self, entry: &'r Entry) -> &'r Meta<N> {
        debug_assert!(
            (*entry.meta).is::<Meta<N>>(),
            "entry/meta type pairing broken for `{}`",
            entry.type_name
        );
        // SAFETY: entries are created exclusively by
        // `PipelineBuilder::stage`, which stores `Arc<Meta<S>>` under
        // `TypeId::of::<S>()`; every caller obtained `entry` by looking
        // up `TypeId::of::<N>()`, so the stored value is `Meta<N>`.
        // The checked `downcast_ref` would re-derive the same fact
        // through a virtual `type_id` call on every emitted event.
        unsafe { &*(Arc::as_ptr(&entry.meta) as *const Meta<N>) }
    }
}

/// Builds the typed event delivering `msg` to stage `N`.
///
/// `explicit` overrides the color outright; otherwise the target
/// stage's coloring decides, with `inherited` feeding `Inherit` stages.
#[inline]
fn emit<N: Stage>(
    router: &'static Router,
    explicit: Option<Color>,
    inherited: Option<Color>,
    req: ReqToken,
    msg: N::In,
) -> Event {
    let entry = router.entry::<N>();
    let meta = router.meta::<N>(entry);
    let color = explicit.unwrap_or_else(|| match meta.coloring {
        Coloring::Serial | Coloring::SameAs(..) => {
            entry.color.expect("serial color resolved at build")
        }
        Coloring::Inherit => inherited.unwrap_or_else(|| {
            panic!(
                "stage `{}` inherits its color: emit from another stage, \
                 or use to_colored/seed_colored/submit_colored",
                entry.type_name
            )
        }),
        Coloring::Keyed(key) => ColorRange::STAGE_KEYED.keyed(key(&msg)),
    });
    let handler = entry.handler;
    let mut ev = Event::for_handler(color, handler).with_action(move |ctx| {
        // `meta` and `router` are `Copy` `&'static` references into the
        // interned routing table: constructing this closure moves no
        // `Arc`, touches no refcount, and execution needs no second
        // lookup — the typed hop is one static call away from the raw
        // boxed closure it replaces (gated by `micro_stage`).
        let req = req.stamped(ctx.now());
        let mut sctx = StageCtx {
            ctx,
            router,
            req,
            color,
        };
        meta.stage.handle(&mut sctx, msg);
    });
    // Stage chains are linear per branch: this event is the one place
    // the (possibly not-yet-stamped) request lives until the next hop
    // or `complete`. Losing it — handler fault, quarantine drain,
    // injected drop — fails exactly one request.
    ev.carries_request = true;
    ev
}

/// The execution context handed to [`Stage::handle`]: the raw [`Ctx`]
/// plus typed routing and the request token.
pub struct StageCtx<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    router: &'static Router,
    req: ReqToken,
    color: Color,
}

impl<'a, 'b> StageCtx<'a, 'b> {
    /// The core executing this handler.
    pub fn core(&self) -> usize {
        self.ctx.core()
    }

    /// Current time in cycles (virtual under simulation, cycle counter
    /// under threads).
    pub fn now(&self) -> u64 {
        self.ctx.now()
    }

    /// The color this stage execution is serialized under.
    pub fn color(&self) -> Color {
        self.color
    }

    /// Cycles elapsed since this request's first stage was dispatched.
    pub fn elapsed(&self) -> u64 {
        self.now().saturating_sub(self.req.t0.min(self.now()))
    }

    /// Accounts extra CPU work to this handler execution (see
    /// [`Ctx::charge`]).
    pub fn charge(&mut self, cycles: u64) {
        self.ctx.charge(cycles);
    }

    /// The raw low-level context, for facilities the typed layer does
    /// not wrap (data-set touches, raw event registration, timers with
    /// hand-built events). Effects buffered through it apply exactly as
    /// from a raw handler.
    pub fn raw(&mut self) -> &mut Ctx<'b> {
        self.ctx
    }

    /// Emits `msg` to stage `N`, forwarding the current request: the
    /// event's cost and penalty come from `N`'s spec, its color from
    /// `N`'s coloring (an `Inherit` target keeps this event's color).
    #[inline]
    pub fn to<N: Stage>(&mut self, msg: N::In) {
        let ev = emit::<N>(self.router, None, Some(self.color), self.req, msg);
        self.ctx.register(ev);
    }

    /// Emits `msg` to stage `N` under an explicit color, forwarding the
    /// current request — the escape hatch for re-coloring mid-chain.
    #[inline]
    pub fn to_colored<N: Stage>(&mut self, color: Color, msg: N::In) {
        let ev = emit::<N>(self.router, Some(color), None, self.req, msg);
        self.ctx.register(ev);
    }

    /// Emits `msg` to stage `N` after `delay` cycles, forwarding the
    /// current request — the typed form of [`Ctx::register_after`]
    /// (poll-loop re-arms, timeouts).
    #[inline]
    pub fn to_after<N: Stage>(&mut self, delay: u64, msg: N::In) {
        let ev = emit::<N>(self.router, None, Some(self.color), self.req, msg);
        self.ctx.register_after(delay, ev);
    }

    /// Emits `msg` to stage `N` as the first stage of a *new* request,
    /// stamped with **this handler's clock**: the new request's latency
    /// covers everything from the spawning handler onward — including
    /// the queueing delay before `N` executes, which is exactly the
    /// signal a latency histogram exists to expose. The idiom for
    /// demultiplexing stages (a poll loop spawning one request per
    /// readiness event).
    #[inline]
    pub fn spawn<N: Stage>(&mut self, msg: N::In) {
        let req = ReqToken { t0: self.ctx.now() };
        let ev = emit::<N>(self.router, None, Some(self.color), req, msg);
        self.ctx.register(ev);
    }

    /// Finishes the current request: records its end-to-end latency
    /// (the request's start stamp to now — see the module-level
    /// *Request latency semantics*) into the executing core's
    /// histogram and `completed_requests` counter, and delivers `out`
    /// to the pipeline's collector for `O` ([`PipelineBuilder::collect`])
    /// if one was registered — otherwise `out` is dropped.
    ///
    /// A seeded/submitted request completed inside its very first
    /// handler spans no dispatch-to-dispatch time and records a
    /// (near-)zero latency; real pipelines complete in a later stage,
    /// where the sample covers every hop's queueing and execution
    /// (and spawned requests count from their spawner's clock).
    #[inline]
    pub fn complete<O: Send + 'static>(&mut self, out: O) {
        self.ctx.complete_request(self.elapsed());
        // Sink-less pipelines (servers whose results leave through the
        // network, benchmarks) skip the hash lookup entirely.
        if self.router.sinks.is_empty() {
            return;
        }
        if let Some(sink) = self.router.sinks.get(&TypeId::of::<O>()) {
            let sink = sink
                .downcast_ref::<Mutex<Vec<O>>>()
                .expect("sink is keyed by the output's TypeId");
            sink.lock().push(out);
        }
    }

    /// Fails the current request: the executing core's
    /// `failed_requests` counter grows (surfaced as
    /// [`RunReport::failed_requests`](crate::metrics::RunReport::failed_requests))
    /// and no latency is recorded — the error twin of
    /// [`StageCtx::complete`], for requests the pipeline carried but
    /// could not answer (the client reset mid-request, the backend
    /// refused). Each carried request should end in exactly one of
    /// `complete` / `fail`; a request that simply stops being forwarded
    /// counts as neither.
    #[inline]
    pub fn fail(&mut self) {
        self.ctx.fail_request();
    }

    /// Asks the runtime to stop once this handler returns (see
    /// [`Ctx::stop_runtime`]).
    pub fn stop_runtime(&mut self) {
        self.ctx.stop_runtime();
    }
}

impl fmt::Debug for StageCtx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageCtx")
            .field("core", &self.core())
            .field("now", &self.now())
            .field("color", &self.color)
            .finish()
    }
}

/// A typed handle to the outputs completed with a given type `O`
/// ([`StageCtx::complete`]); obtained from [`PipelineBuilder::collect`].
pub struct Collected<O> {
    inner: Arc<Mutex<Vec<O>>>,
}

impl<O> Clone for Collected<O> {
    fn clone(&self) -> Self {
        Collected {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<O> Collected<O> {
    /// Takes every output collected so far (in completion order, which
    /// is deterministic under simulation).
    pub fn take(&self) -> Vec<O> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Number of outputs collected and not yet taken.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no output is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<O> fmt::Debug for Collected<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collected")
            .field("len", &self.len())
            .finish()
    }
}

/// One registered-but-not-yet-installed stage.
struct PendingStage {
    type_id: TypeId,
    type_name: &'static str,
    handler: HandlerSpec,
    /// Erased coloring kind for build-time resolution (the typed
    /// version lives in `meta`).
    kind: PendingKind,
    meta: Arc<dyn Any + Send + Sync>,
}

enum PendingKind {
    Serial,
    Inherit,
    Keyed,
    SameAs(TypeId, &'static str),
}

type SeedFn = Box<dyn FnOnce(&'static Router) -> Event + Send>;

/// One queued seed: the event maker plus an optional core pin.
struct Seed {
    make: SeedFn,
    pin_core: Option<usize>,
}

/// Assembles [`Stage`]s into an installable [`Pipeline`].
///
/// Builder methods consume and return `self` so graphs read as one
/// expression; [`PipelineBuilder::collect`] borrows instead (it returns
/// the collector handle).
pub struct PipelineBuilder {
    name: String,
    space: ColorSpace,
    stages: Vec<PendingStage>,
    sinks: FxHashMap<TypeId, Arc<dyn Any + Send + Sync>>,
    seeds: Vec<Seed>,
}

impl PipelineBuilder {
    /// An empty pipeline named `name`, allocating colors from
    /// [`ColorSpace::for_stages`] (default color and listener range
    /// reserved).
    pub fn new(name: impl Into<String>) -> Self {
        PipelineBuilder {
            name: name.into(),
            space: ColorSpace::for_stages(),
            stages: Vec::new(),
            sinks: FxHashMap::default(),
            seeds: Vec::new(),
        }
    }

    /// Replaces the color allocator — for applications that coexist
    /// with other services on one executor and need to reserve their
    /// neighbours' colors first.
    pub fn with_colors(mut self, space: ColorSpace) -> Self {
        self.space = space;
        self
    }

    /// Registers `stage` under its [`Stage::spec`]. The handler spec is
    /// registered with the executor at install; serial colors are
    /// allocated at [`PipelineBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if a stage of the same type is already registered.
    pub fn stage<S: Stage>(mut self, stage: S) -> Self {
        let spec = stage.spec();
        let type_id = TypeId::of::<S>();
        assert!(
            !self.stages.iter().any(|s| s.type_id == type_id),
            "stage `{}` registered twice",
            std::any::type_name::<S>()
        );
        let kind = match spec.coloring {
            Coloring::Serial => PendingKind::Serial,
            Coloring::Inherit => PendingKind::Inherit,
            Coloring::Keyed(_) => PendingKind::Keyed,
            Coloring::SameAs(t, n) => PendingKind::SameAs(t, n),
        };
        self.stages.push(PendingStage {
            type_id,
            type_name: std::any::type_name::<S>(),
            handler: spec.handler,
            kind,
            meta: Arc::new(Meta {
                stage,
                coloring: spec.coloring,
            }),
        });
        self
    }

    /// Registers a completion sink for outputs of type `O` and returns
    /// its handle: every [`StageCtx::complete`] with an `O` lands
    /// there.
    pub fn collect<O: Send + 'static>(&mut self) -> Collected<O> {
        let inner: Arc<Mutex<Vec<O>>> = Arc::new(Mutex::new(Vec::new()));
        self.sinks.insert(
            TypeId::of::<O>(),
            Arc::clone(&inner) as Arc<dyn Any + Send + Sync>,
        );
        Collected { inner }
    }

    /// Queues an initial message for stage `S`, registered (and its
    /// request opened) when the pipeline is installed.
    ///
    /// # Panics
    ///
    /// Panics **at install** if `S` inherits its color (seeds have no
    /// emitter to inherit from — use [`PipelineBuilder::seed_colored`]).
    pub fn seed<S: Stage>(mut self, msg: S::In) -> Self {
        self.seeds.push(Seed {
            make: Box::new(move |router| emit::<S>(router, None, None, ReqToken::fresh(), msg)),
            pin_core: None,
        });
        self
    }

    /// Queues an initial message for stage `S` under an explicit color.
    pub fn seed_colored<S: Stage>(mut self, color: Color, msg: S::In) -> Self {
        self.seeds.push(Seed {
            make: Box::new(move |router| {
                emit::<S>(router, Some(color), None, ReqToken::fresh(), msg)
            }),
            pin_core: None,
        });
        self
    }

    /// Queues an initial message for stage `S` and pins its color to
    /// `core`, overriding the hash dispatch — the typed form of
    /// [`Executor::register_pinned`], used by workloads that start
    /// deliberately imbalanced so workstealing has something to fix.
    ///
    /// # Panics
    ///
    /// Panics **at install** if `core` is out of range for the
    /// executor, or if `S` inherits its color.
    pub fn seed_pinned<S: Stage>(mut self, core: usize, msg: S::In) -> Self {
        self.seeds.push(Seed {
            make: Box::new(move |router| emit::<S>(router, None, None, ReqToken::fresh(), msg)),
            pin_core: Some(core),
        });
        self
    }

    /// Resolves colors (collision-checked) and returns the installable
    /// [`Pipeline`].
    ///
    /// # Panics
    ///
    /// Panics if a [`StageSpec::share_color_with`] target is not a
    /// serial stage of this pipeline, or the color space is exhausted.
    pub fn build(mut self) -> Pipeline {
        // First pass: allocate serial colors.
        let mut colors: FxHashMap<TypeId, Color> = FxHashMap::default();
        for s in &self.stages {
            if matches!(s.kind, PendingKind::Serial) {
                colors.insert(s.type_id, self.space.alloc());
            }
        }
        // Second pass: resolve shared colors against the serial ones.
        let mut resolved: Vec<Option<Color>> = Vec::with_capacity(self.stages.len());
        for s in &self.stages {
            resolved.push(match &s.kind {
                PendingKind::Serial => Some(colors[&s.type_id]),
                PendingKind::Inherit | PendingKind::Keyed => None,
                PendingKind::SameAs(target, target_name) => {
                    Some(*colors.get(target).unwrap_or_else(|| {
                        panic!(
                            "stage `{}` shares its color with `{target_name}`, which is \
                             not a serial stage of this pipeline",
                            s.type_name
                        )
                    }))
                }
            });
        }
        let stages = self
            .stages
            .drain(..)
            .zip(resolved)
            .map(|(s, color)| ReadyStage {
                type_id: s.type_id,
                type_name: s.type_name,
                handler: s.handler,
                color,
                meta: s.meta,
            })
            .collect();
        Pipeline {
            name: self.name,
            stages,
            sinks: self.sinks,
            seeds: self.seeds,
            router: None,
        }
    }
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .field("seeds", &self.seeds.len())
            .finish()
    }
}

struct ReadyStage {
    type_id: TypeId,
    type_name: &'static str,
    handler: HandlerSpec,
    color: Option<Color>,
    meta: Arc<dyn Any + Send + Sync>,
}

/// An installable stage graph ([`PipelineBuilder::build`]): a
/// [`Service`] that registers every stage's handler spec, claims its
/// colors, and seeds its initial requests on whichever executor it is
/// installed on.
pub struct Pipeline {
    name: String,
    stages: Vec<ReadyStage>,
    sinks: FxHashMap<TypeId, Arc<dyn Any + Send + Sync>>,
    seeds: Vec<Seed>,
    router: Option<&'static Router>,
}

impl Pipeline {
    /// Whether [`Service::install`] has run.
    pub fn is_installed(&self) -> bool {
        self.router.is_some()
    }

    /// A cloneable, `Send` submission handle over `injector` — the
    /// typed analogue of injecting raw events from outside the
    /// executor. Each submission opens a new request.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has not been installed yet.
    pub fn sender(&self, injector: Injector) -> StageSender {
        StageSender {
            router: self.router.expect("pipeline not installed"),
            injector,
        }
    }
}

impl Service for Pipeline {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics if the pipeline is installed twice (handler ids and seeds
    /// are per-installation).
    fn install(&mut self, exec: &mut dyn Executor) {
        assert!(
            self.router.is_none(),
            "pipeline `{}` is already installed",
            self.name
        );
        let mut ids = Vec::with_capacity(self.stages.len());
        let mut entries = Vec::with_capacity(self.stages.len());
        for s in &self.stages {
            let handler = exec.register_handler(s.handler.clone());
            ids.push(s.type_id);
            entries.push(Entry {
                handler,
                color: s.color,
                meta: Arc::clone(&s.meta),
                type_name: s.type_name,
            });
        }
        // The routing table is interned for the process lifetime: every
        // emitted event's closure carries a `Copy` `&'static` reference
        // instead of an `Arc`, keeping refcount traffic off the
        // per-event dispatch path (the `micro_stage` gate). A pipeline
        // is installed once and its stages live as long as events can
        // reference them, so the leak is one routing table per
        // installed pipeline — static configuration, not per-request
        // state.
        let router: &'static Router = Box::leak(Box::new(Router {
            ids,
            entries,
            sinks: self.sinks.clone(),
        }));
        for seed in self.seeds.drain(..) {
            let ev = (seed.make)(router);
            match seed.pin_core {
                Some(core) => exec.register_pinned(ev, core),
                None => exec.register(ev),
            }
        }
        self.router = Some(router);
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .field("installed", &self.is_installed())
            .finish()
    }
}

/// A cloneable, `Send` handle submitting typed messages into an
/// installed [`Pipeline`] from outside the executor (load generators,
/// poll threads). Rides the same injection path as raw events: the
/// lock-free inboxes on threads, the run-loop mailbox on sim.
#[derive(Clone)]
pub struct StageSender {
    router: &'static Router,
    injector: Injector,
}

impl StageSender {
    /// Submits `msg` to stage `S`, opening a new request (latency
    /// measured from its first dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `S` is not registered, or inherits its color (use
    /// [`StageSender::submit_colored`]).
    pub fn submit<S: Stage>(&self, msg: S::In) {
        self.injector
            .inject(emit::<S>(self.router, None, None, ReqToken::fresh(), msg));
    }

    /// Submits `msg` to stage `S` under an explicit color.
    pub fn submit_colored<S: Stage>(&self, color: Color, msg: S::In) {
        self.injector.inject(emit::<S>(
            self.router,
            Some(color),
            None,
            ReqToken::fresh(),
            msg,
        ));
    }

    /// Fallible twin of [`StageSender::submit`]: checks the runtime's
    /// [`crate::admission::QueueLimits`] and returns
    /// [`Overload`] instead of blocking or shedding when the target is
    /// saturated — the message is dropped on rejection, so the caller
    /// keeps ownership of the decision (retry, degrade, report).
    ///
    /// # Panics
    ///
    /// Panics if `S` is not registered, or inherits its color (use
    /// [`StageSender::try_submit_colored`]).
    pub fn try_submit<S: Stage>(&self, msg: S::In) -> Result<Admitted, Overload> {
        self.injector
            .try_inject(emit::<S>(self.router, None, None, ReqToken::fresh(), msg))
    }

    /// Fallible twin of [`StageSender::submit_colored`].
    pub fn try_submit_colored<S: Stage>(
        &self,
        color: Color,
        msg: S::In,
    ) -> Result<Admitted, Overload> {
        self.injector.try_inject(emit::<S>(
            self.router,
            Some(color),
            None,
            ReqToken::fresh(),
            msg,
        ))
    }

    /// The underlying injector (stop/keepalive/outstanding controls).
    pub fn injector(&self) -> &Injector {
        &self.injector
    }
}

impl fmt::Debug for StageSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageSender")
            .field("injector", &self.injector)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecKind;
    use crate::runtime::RuntimeBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct First {
        hops: u32,
    }
    struct Middle;
    struct Last {
        seen: Arc<AtomicU64>,
    }

    #[derive(Clone, Copy)]
    struct Token(u64);

    impl Stage for First {
        type In = Token;
        fn spec(&self) -> StageSpec<Token> {
            StageSpec::new("first").cost(1_000).keyed(|t| t.0)
        }
        fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Token) {
            for _ in 0..self.hops {
                ctx.to::<Middle>(msg);
            }
        }
    }

    impl Stage for Middle {
        type In = Token;
        fn spec(&self) -> StageSpec<Token> {
            StageSpec::new("middle").cost(500).inherit_color()
        }
        fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Token) {
            ctx.to::<Last>(msg);
        }
    }

    impl Stage for Last {
        type In = Token;
        fn spec(&self) -> StageSpec<Token> {
            StageSpec::new("last").cost(200)
        }
        fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Token) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            ctx.complete(msg.0);
        }
    }

    fn three_stage(hops: u32, seeds: u64) -> (PipelineBuilder, Arc<AtomicU64>) {
        let seen = Arc::new(AtomicU64::new(0));
        let mut b = PipelineBuilder::new("test")
            .stage(First { hops })
            .stage(Middle)
            .stage(Last {
                seen: Arc::clone(&seen),
            });
        for s in 0..seeds {
            b = b.seed::<First>(Token(s));
        }
        (b, seen)
    }

    #[test]
    fn chain_runs_identically_on_both_executors() {
        let mut counts = Vec::new();
        for kind in [ExecKind::Sim, ExecKind::Threaded] {
            let (mut b, seen) = three_stage(2, 5);
            let outs = b.collect::<u64>();
            let mut rt = RuntimeBuilder::new().cores(2).build(kind);
            rt.install(b.build());
            let report = rt.run();
            // 5 seeds, each fanning into 2 middle+last pairs.
            assert_eq!(report.events_processed(), 5 + 5 * 2 * 2);
            assert_eq!(seen.load(Ordering::Relaxed), 10);
            assert_eq!(report.completed_requests(), 10);
            assert!(report.latency_p50() > 0, "stages have nonzero cost");
            assert!(report.latency_p50() <= report.latency_p99());
            let mut got = outs.take();
            got.sort_unstable();
            assert_eq!(got.len(), 10);
            counts.push(report.events_processed());
        }
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn keyed_and_inherited_colors_follow_the_emitter() {
        struct Probe {
            colors: Arc<Mutex<Vec<(u64, Color)>>>,
        }
        impl Stage for Probe {
            type In = Token;
            fn spec(&self) -> StageSpec<Token> {
                StageSpec::new("probe").inherit_color()
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Token) {
                self.colors.lock().push((msg.0, ctx.color()));
            }
        }
        struct Root;
        impl Stage for Root {
            type In = Token;
            fn spec(&self) -> StageSpec<Token> {
                StageSpec::new("root").keyed(|t| t.0)
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, msg: Token) {
                ctx.to::<Probe>(msg);
            }
        }
        let colors: Arc<Mutex<Vec<(u64, Color)>>> = Arc::new(Mutex::new(Vec::new()));
        let b = PipelineBuilder::new("colors")
            .stage(Root)
            .stage(Probe {
                colors: Arc::clone(&colors),
            })
            .seed::<Root>(Token(3))
            .seed::<Root>(Token(3))
            .seed::<Root>(Token(4));
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        rt.install(b.build());
        rt.run();
        let got = colors.lock().clone();
        assert_eq!(got.len(), 3);
        let of = |k: u64| {
            got.iter()
                .filter(|(key, _)| *key == k)
                .map(|(_, c)| *c)
                .collect::<Vec<_>>()
        };
        assert_eq!(of(3)[0], of(3)[1], "same key, same inherited color");
        assert_ne!(of(3)[0], of(4)[0], "distinct keys, distinct colors");
        assert_eq!(of(3)[0], ColorRange::STAGE_KEYED.keyed(3));
        // Keyed colors live in the keyed plane, never on a serial
        // allocation.
        assert!(ColorRange::STAGE_KEYED.contains(of(3)[0]));
        assert!(!ColorRange::STAGE_SERIAL.contains(of(4)[0]));
    }

    #[test]
    fn shared_colors_resolve_to_the_target_stage() {
        struct Loop;
        struct Helper {
            colors: Arc<Mutex<Vec<Color>>>,
        }
        impl Stage for Loop {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("loop")
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                ctx.to::<Helper>(());
            }
        }
        impl Stage for Helper {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("helper").share_color_with::<Loop>()
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                self.colors.lock().push(ctx.color());
            }
        }
        let colors: Arc<Mutex<Vec<Color>>> = Arc::new(Mutex::new(Vec::new()));
        let b = PipelineBuilder::new("shared")
            .stage(Loop)
            .stage(Helper {
                colors: Arc::clone(&colors),
            })
            .seed::<Loop>(());
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        rt.install(b.build());
        rt.run();
        let got = colors.lock().clone();
        // The pipeline's ColorSpace reserves color 0, the listener
        // range and the keyed plane, so Loop (the only serial stage)
        // gets the serial plane's first color — 1 — and Helper shares
        // it.
        assert_eq!(got, vec![Color::new(1)]);
    }

    #[test]
    fn partitioned_color_spaces_keep_co_installed_pipelines_disjoint() {
        // Two pipelines on ONE executor: each gets an allocator that
        // reserves the other's territory, so their serial stages can
        // never silently share a color (the failure `ColorSpace`
        // exists to prevent). Services expose this through their
        // `with_colors` builders.
        struct Probe {
            colors: Arc<Mutex<Vec<Color>>>,
        }
        impl Stage for Probe {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("probe")
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                self.colors.lock().push(ctx.color());
            }
        }
        let a_territory = ColorRange::new(0x001, 0x0FF);
        let b_territory = ColorRange::new(0x100, 0x1FF);
        let mut a_space = ColorSpace::for_stages();
        a_space.reserve_range(b_territory);
        let mut b_space = ColorSpace::for_stages();
        b_space.reserve_range(a_territory);
        b_space.reserve_range(ColorRange::new(0x200, 0x7FFF));

        let a_colors: Arc<Mutex<Vec<Color>>> = Arc::new(Mutex::new(Vec::new()));
        let b_colors: Arc<Mutex<Vec<Color>>> = Arc::new(Mutex::new(Vec::new()));
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        rt.install(
            PipelineBuilder::new("a")
                .with_colors(a_space)
                .stage(Probe {
                    colors: Arc::clone(&a_colors),
                })
                .seed::<Probe>(())
                .build(),
        );
        rt.install(
            PipelineBuilder::new("b")
                .with_colors(b_space)
                .stage(Probe {
                    colors: Arc::clone(&b_colors),
                })
                .seed::<Probe>(())
                .build(),
        );
        rt.run();
        let a = a_colors.lock()[0];
        let b = b_colors.lock()[0];
        assert!(a_territory.contains(a), "a got {a}");
        assert!(b_territory.contains(b), "b got {b}");
        assert_ne!(a, b, "co-installed serial stages must not collide");
    }

    #[test]
    fn spawn_opens_a_new_request_per_message() {
        struct Mux;
        struct Work;
        impl Stage for Mux {
            type In = u32;
            fn spec(&self) -> StageSpec<u32> {
                StageSpec::new("mux").cost(50_000)
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, n: u32) {
                for _ in 0..n {
                    ctx.spawn::<Work>(());
                }
            }
        }
        impl Stage for Work {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("work").cost(1_000).inherit_color()
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                // Spawned requests are stamped with the SPAWNER's
                // clock: the mux's 50 Kcycles of execution (i.e. this
                // request's queueing delay) must show in its latency.
                assert!(ctx.elapsed() >= 50_000, "elapsed {}", ctx.elapsed());
                ctx.complete(());
            }
        }
        let b = PipelineBuilder::new("mux")
            .stage(Mux)
            .stage(Work)
            .seed::<Mux>(4);
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        rt.install(b.build());
        let report = rt.run();
        assert_eq!(report.completed_requests(), 4);
        assert_eq!(report.events_processed(), 5);
    }

    #[test]
    fn sender_submits_typed_messages_from_outside() {
        for kind in [ExecKind::Sim, ExecKind::Threaded] {
            let (mut b, seen) = three_stage(1, 0);
            let outs = b.collect::<u64>();
            let mut rt = RuntimeBuilder::new().cores(2).build(kind);
            let pipeline = rt.install(b.build());
            let sender = pipeline.sender(rt.injector());
            let keepalive = sender.injector().keepalive();
            let producer = std::thread::spawn(move || {
                for i in 0..20u64 {
                    sender.submit::<First>(Token(i));
                }
                sender.injector().stop_when_idle();
                drop(keepalive);
            });
            let report = rt.run();
            producer.join().unwrap();
            assert_eq!(seen.load(Ordering::Relaxed), 20, "{kind}");
            assert_eq!(report.completed_requests(), 20, "{kind}");
            assert_eq!(outs.len(), 20, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "not registered in this pipeline")]
    fn emitting_to_an_unregistered_stage_panics() {
        struct Orphan;
        impl Stage for Orphan {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("orphan")
            }
            fn handle(&self, _ctx: &mut StageCtx<'_, '_>, _msg: ()) {}
        }
        struct Bad;
        impl Stage for Bad {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("bad")
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                ctx.to::<Orphan>(());
            }
        }
        let b = PipelineBuilder::new("bad").stage(Bad).seed::<Bad>(());
        // Default fault containment would quarantine this misuse panic
        // into the report; Abort opts back into fail-fast so the test
        // observes the message.
        let mut rt = RuntimeBuilder::new()
            .cores(1)
            .fault_policy(crate::fault::FaultPolicy::Abort)
            .build(ExecKind::Sim);
        rt.install(b.build());
        rt.run();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_stage_registration_panics() {
        let _ = PipelineBuilder::new("dup").stage(Middle).stage(Middle);
    }

    #[test]
    #[should_panic(expected = "inherits its color")]
    fn seeding_an_inherit_stage_without_color_panics() {
        let b = PipelineBuilder::new("inherit-seed")
            .stage(Middle)
            .stage(Last {
                seen: Arc::new(AtomicU64::new(0)),
            })
            .seed::<Middle>(Token(1));
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        rt.install(b.build());
    }

    #[test]
    fn seed_colored_feeds_inherit_stages() {
        let seen = Arc::new(AtomicU64::new(0));
        let b = PipelineBuilder::new("inherit-seed-colored")
            .stage(Middle)
            .stage(Last {
                seen: Arc::clone(&seen),
            })
            .seed_colored::<Middle>(Color::new(42), Token(1));
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        rt.install(b.build());
        let report = rt.run();
        assert_eq!(report.events_processed(), 2);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "not a serial stage")]
    fn sharing_a_color_with_a_missing_stage_panics() {
        struct Bad;
        impl Stage for Bad {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("bad").share_color_with::<Middle>()
            }
            fn handle(&self, _ctx: &mut StageCtx<'_, '_>, _msg: ()) {}
        }
        let _ = PipelineBuilder::new("bad-share").stage(Bad).build();
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let (b, _) = three_stage(1, 1);
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        let mut p = b.build();
        p.install(&mut rt);
        p.install(&mut rt);
    }

    #[test]
    fn specs_register_real_handler_annotations() {
        // The cost/penalty of the stage spec must reach the runtime's
        // handler registry (they drive the workstealing heuristics).
        struct Heavy;
        impl Stage for Heavy {
            type In = ();
            fn spec(&self) -> StageSpec<()> {
                StageSpec::new("heavy").cost(123_456).penalty(77)
            }
            fn handle(&self, ctx: &mut StageCtx<'_, '_>, _msg: ()) {
                ctx.complete(());
            }
        }
        let b = PipelineBuilder::new("heavy").stage(Heavy).seed::<Heavy>(());
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        rt.install(b.build());
        let report = rt.run();
        assert_eq!(report.events_processed(), 1);
        // The declared cost drove the virtual clock.
        assert!(report.wall_cycles() >= 123_456);
        assert_eq!(report.completed_requests(), 1);
        // A request completed inside its very first handler spans no
        // dispatch-to-dispatch time: its latency is (near) zero.
        assert_eq!(report.latency_p50(), report.latency_p99());
    }
}
