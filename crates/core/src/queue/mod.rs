//! Per-core event queues, in both flavors evaluated by the paper.
//!
//! - [`legacy::LegacyQueue`] — Libasync-smp's single FIFO event queue per
//!   core (paper Section II). Stealing a color requires scanning the
//!   queue, which is what makes its workstealing expensive (about 190
//!   cycles per scanned event, Section II-C).
//! - [`mely::MelyQueue`] — Mely's architecture (Section IV-A): events
//!   grouped by color in *color-queues*, chained into a doubly-linked
//!   *core-queue*, plus a three-interval *stealing-queue* holding the
//!   colors currently worth stealing. Stealing a color detaches a whole
//!   color-queue in O(1).
//!
//! Both queues are plain data structures; executors wrap them in the
//! appropriate synchronisation ([`crate::sync::SpinLock`] under threads,
//! a lock *cost model* under simulation).

pub mod legacy;
pub mod mely;

pub use legacy::LegacyQueue;
pub use mely::{DetachedColorQueue, MelyQueue};

use crate::event::Event;

/// A per-core queue of either flavor (executors dispatch on this).
#[derive(Debug)]
pub enum QueueImpl {
    /// Libasync-smp FIFO.
    Legacy(LegacyQueue),
    /// Mely color-queues.
    Mely(MelyQueue),
}

impl QueueImpl {
    /// Total queued events.
    pub fn len(&self) -> usize {
        match self {
            QueueImpl::Legacy(q) => q.len(),
            QueueImpl::Mely(q) => q.len(),
        }
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct colors currently queued.
    pub fn distinct_colors(&self) -> usize {
        match self {
            QueueImpl::Legacy(q) => q.distinct_colors(),
            QueueImpl::Mely(q) => q.distinct_colors(),
        }
    }

    /// Color-queue creations served from the recycled-buffer pool
    /// (always 0 for the legacy flavor, which has no pool).
    pub fn buf_reuses(&self) -> u64 {
        match self {
            QueueImpl::Legacy(_) => 0,
            QueueImpl::Mely(q) => q.buf_reuses(),
        }
    }

    /// Pushes one event (appending to its color's position for the
    /// flavor's discipline).
    pub fn push(&mut self, ev: Event) {
        match self {
            QueueImpl::Legacy(q) => q.push(ev),
            QueueImpl::Mely(q) => {
                q.push(ev);
            }
        }
    }

    /// Pops the next event according to the flavor's scheduling
    /// discipline (`batch_threshold` only matters for Mely).
    pub fn pop(&mut self, batch_threshold: u32) -> Option<Event> {
        match self {
            QueueImpl::Legacy(q) => q.pop(),
            QueueImpl::Mely(q) => q.pop(batch_threshold),
        }
    }

    /// Earliest virtual time at which the next event (per the scheduling
    /// discipline) can run; `None` when empty. Simulation only.
    pub fn next_ready_time(&mut self, batch_threshold: u32) -> Option<u64> {
        match self {
            QueueImpl::Legacy(q) => q.next_ready_time(),
            QueueImpl::Mely(q) => q.next_ready_time(batch_threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    #[test]
    fn queue_impl_dispatches() {
        for mut q in [
            QueueImpl::Legacy(LegacyQueue::new()),
            QueueImpl::Mely(MelyQueue::new(true)),
        ] {
            assert!(q.is_empty());
            q.push(Event::new(Color::new(1), 10));
            q.push(Event::new(Color::new(2), 10));
            assert_eq!(q.len(), 2);
            assert_eq!(q.distinct_colors(), 2);
            assert_eq!(q.next_ready_time(10), Some(0));
            assert!(q.pop(10).is_some());
            assert!(q.pop(10).is_some());
            assert!(q.pop(10).is_none());
            assert!(q.next_ready_time(10).is_none());
        }
    }
}
