//! The Libasync-smp per-core event queue (paper Section II).
//!
//! A single FIFO holds every event dispatched to the core, regardless of
//! color. The runtime also keeps "a counter of pending events for each
//! color" (paper, footnote 1), which lets `construct_event_set` stop
//! scanning once all events of the stolen color have been collected —
//! both the scan-based color choice and the scan-based extraction report
//! how many elements they examined so the simulation can charge the
//! paper's ~190 cycles per scanned event.

use std::collections::VecDeque;

use fxhash::FxHashMap;

use crate::color::Color;
use crate::event::Event;

/// Libasync-smp's FIFO event queue with per-color pending counters.
///
/// The counter map uses the vendored Fx hasher (like
/// [`crate::queue::MelyQueue`]'s color index): every push updates one
/// entry, and SipHash on 2-byte color keys was pure overhead on the
/// dispatch hot path.
#[derive(Debug, Default)]
pub struct LegacyQueue {
    fifo: VecDeque<Event>,
    counts: FxHashMap<Color, usize>,
    total_cost: u64,
}

impl LegacyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Number of distinct colors present.
    pub fn distinct_colors(&self) -> usize {
        self.counts.len()
    }

    /// Pending events of `color`.
    pub fn count_of(&self, color: Color) -> usize {
        self.counts.get(&color).copied().unwrap_or(0)
    }

    /// Sum of the declared costs of all queued events.
    pub fn total_cost(&self) -> u64 {
        self.total_cost
    }

    /// Appends an event.
    pub fn push(&mut self, ev: Event) {
        *self.counts.entry(ev.color()).or_insert(0) += 1;
        self.total_cost += ev.cost();
        self.fifo.push_back(ev);
    }

    /// Pops the oldest event.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.fifo.pop_front()?;
        self.note_removed(&ev);
        Some(ev)
    }

    /// Earliest time the head event can run (`None` when empty).
    pub fn next_ready_time(&self) -> Option<u64> {
        self.fifo.front().map(|e| e.visible_at)
    }

    fn note_removed(&mut self, ev: &Event) {
        let c = self
            .counts
            .get_mut(&ev.color())
            .expect("queued event must be counted");
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&ev.color());
        }
        self.total_cost -= ev.cost();
    }

    /// The paper's `choose_color_to_steal` (Section II-B): scans the queue
    /// front-to-back and selects the first color that (i) is not the color
    /// currently being processed on the victim, and (ii) is associated
    /// with less than half of the queued events. Returns the chosen color
    /// and the number of events scanned (for cost accounting), or `None`
    /// when no color qualifies.
    pub fn choose_color_to_steal(&self, in_flight: Option<Color>) -> Option<(Color, usize)> {
        let len = self.fifo.len();
        for (i, ev) in self.fifo.iter().enumerate() {
            let color = ev.color();
            if Some(color) == in_flight {
                continue;
            }
            if self.count_of(color) * 2 < len {
                return Some((color, i + 1));
            }
        }
        None
    }

    /// The paper's `construct_event_set`: removes and returns every queued
    /// event of `color` (preserving their relative order) plus the number
    /// of elements scanned. Thanks to the per-color counter the scan stops
    /// as soon as the last matching event has been found.
    ///
    /// Performance note (profiled for the zero-allocation-dispatch PR):
    /// the per-event bookkeeping (counter decrement, cost subtraction)
    /// is already hoisted out of the scan — the counter is removed once
    /// and the cost summed over the extracted set only. The remaining
    /// per-element work inside the loop is the color compare the paper
    /// itself charges ~190 cycles/event for (Section II-C), so it stays;
    /// the tail of the queue past the last match is now moved wholesale
    /// (no per-element compare) instead of being re-examined.
    pub fn extract_color(&mut self, color: Color) -> (Vec<Event>, usize) {
        let want = self.count_of(color);
        if want == 0 {
            return (Vec::new(), 0);
        }
        let mut out = Vec::with_capacity(want);
        let mut kept = VecDeque::with_capacity(self.fifo.len() - want);
        let mut scanned = 0;
        while let Some(ev) = self.fifo.pop_front() {
            scanned += 1;
            if ev.color() == color {
                out.push(ev);
                if out.len() == want {
                    break;
                }
            } else {
                kept.push_back(ev);
            }
        }
        // Everything after the last matching event keeps its order and
        // needs no inspection.
        kept.append(&mut self.fifo);
        self.fifo = kept;
        self.counts.remove(&color);
        self.total_cost -= out.iter().map(|e| e.cost()).sum::<u64>();
        (out, scanned)
    }

    /// The paper's `migrate`: appends a stolen event set to this queue.
    pub fn append(&mut self, events: Vec<Event>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// Iterates the queued events front-to-back (tests and debugging).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.fifo.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(color: u16, cost: u64) -> Event {
        Event::new(Color::new(color), cost)
    }

    #[test]
    fn fifo_order_and_counts() {
        let mut q = LegacyQueue::new();
        q.push(ev(1, 10));
        q.push(ev(2, 20));
        q.push(ev(1, 30));
        assert_eq!(q.len(), 3);
        assert_eq!(q.distinct_colors(), 2);
        assert_eq!(q.count_of(Color::new(1)), 2);
        assert_eq!(q.total_cost(), 60);
        assert_eq!(q.pop().unwrap().cost(), 10);
        assert_eq!(q.count_of(Color::new(1)), 1);
        assert_eq!(q.pop().unwrap().cost(), 20);
        assert_eq!(q.distinct_colors(), 1);
        assert_eq!(q.pop().unwrap().cost(), 30);
        assert!(q.pop().is_none());
        assert_eq!(q.total_cost(), 0);
    }

    #[test]
    fn choose_color_skips_in_flight() {
        let mut q = LegacyQueue::new();
        q.push(ev(5, 1));
        q.push(ev(6, 1));
        q.push(ev(7, 1));
        let (c, scanned) = q.choose_color_to_steal(Some(Color::new(5))).unwrap();
        assert_eq!(c, Color::new(6));
        assert_eq!(scanned, 2);
    }

    #[test]
    fn choose_color_requires_less_than_half() {
        let mut q = LegacyQueue::new();
        // Color 1 holds 3 of 4 events: not stealable. Color 2 holds 1 of 4.
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        q.push(ev(2, 1));
        q.push(ev(1, 1));
        let (c, scanned) = q.choose_color_to_steal(None).unwrap();
        assert_eq!(c, Color::new(2));
        assert_eq!(scanned, 3);
        // Exactly half is also rejected: 1 of 2.
        let mut q2 = LegacyQueue::new();
        q2.push(ev(1, 1));
        q2.push(ev(2, 1));
        assert!(q2.choose_color_to_steal(None).is_none());
    }

    #[test]
    fn choose_color_none_when_all_excluded() {
        let mut q = LegacyQueue::new();
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        assert!(q.choose_color_to_steal(None).is_none());
        assert!(q.choose_color_to_steal(Some(Color::new(1))).is_none());
    }

    #[test]
    fn extract_color_preserves_order_and_stops_early() {
        let mut q = LegacyQueue::new();
        q.push(ev(1, 10));
        q.push(ev(2, 20));
        q.push(ev(1, 30));
        q.push(ev(3, 40));
        q.push(ev(2, 50));
        let (set, scanned) = q.extract_color(Color::new(1));
        assert_eq!(set.iter().map(|e| e.cost()).collect::<Vec<_>>(), [10, 30]);
        // Early stop: last color-1 event is at position 3 of 5.
        assert_eq!(scanned, 3);
        // Remaining events keep their order.
        assert_eq!(q.iter().map(|e| e.cost()).collect::<Vec<_>>(), [20, 40, 50]);
        assert_eq!(q.count_of(Color::new(1)), 0);
        assert_eq!(q.total_cost(), 110);
    }

    #[test]
    fn extract_missing_color_scans_nothing() {
        let mut q = LegacyQueue::new();
        q.push(ev(1, 10));
        let (set, scanned) = q.extract_color(Color::new(9));
        assert!(set.is_empty());
        assert_eq!(scanned, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn extract_full_scan_when_color_is_last() {
        let mut q = LegacyQueue::new();
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        q.push(ev(2, 1));
        let (_, scanned) = q.extract_color(Color::new(2));
        assert_eq!(scanned, 3, "must scan the whole queue");
    }

    #[test]
    fn append_migrates_sets() {
        let mut a = LegacyQueue::new();
        a.push(ev(1, 10));
        a.push(ev(2, 5));
        let (set, _) = a.extract_color(Color::new(1));
        let mut b = LegacyQueue::new();
        b.append(set);
        assert_eq!(b.len(), 1);
        assert_eq!(b.count_of(Color::new(1)), 1);
        assert_eq!(b.total_cost(), 10);
    }

    #[test]
    fn next_ready_time_tracks_head_visibility() {
        let mut q = LegacyQueue::new();
        assert!(q.next_ready_time().is_none());
        let mut e = ev(1, 1);
        e.visible_at = 500;
        q.push(e);
        assert_eq!(q.next_ready_time(), Some(500));
    }
}
