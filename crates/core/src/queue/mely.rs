//! The Mely per-core queue architecture (paper Section IV-A/B).
//!
//! Events of one color are grouped in a *color-queue*; a core's
//! color-queues are chained in a doubly-linked *core-queue*. The core
//! executes the first color-queue's events, at most `batch_threshold`
//! (10 in the paper) in a row before rotating to the next color-queue to
//! prevent starvation; an emptied color-queue is removed from the
//! core-queue.
//!
//! For the time-left heuristic, each core also maintains a
//! *stealing-queue*: the set of color-queues whose cumulative (weighted)
//! processing time exceeds the current steal-cost estimate — the colors
//! *worth stealing*. To keep insertions cheap, the stealing-queue is only
//! partially ordered: it is "split in three time-left intervals" with no
//! order inside an interval, exactly as in the paper.
//!
//! Stealing a color from a `MelyQueue` detaches the whole color-queue in
//! O(1) — this is the structural change that makes Mely's steals ~12.5×
//! cheaper than Libasync-smp's queue scans (Table III).
//!
//! # Memory architecture
//!
//! The steady-state dispatch path is allocation-free and hash-cheap:
//!
//! - The color index is a [`FxHashMap`] (vendored Fx hasher: one
//!   multiply per key) instead of `std`'s SipHash `RandomState` —
//!   every push pays one lookup, and colors are 2-byte application
//!   annotations, not adversarial input, so HashDoS hardening buys
//!   nothing on this path.
//! - Freed color-queues return their event buffer (a `VecDeque` with
//!   its grown capacity intact) to a bounded per-queue *buffer pool*
//!   (`BUF_POOL_MAX` entries); creating a color-queue takes a pooled
//!   buffer first. Short-lived colors — the costly path the paper
//!   notes in Section V-C1 — therefore stop hitting the allocator once
//!   the pool is warm.
//! - Steals stay O(1) and allocation-free end to end: [`MelyQueue::detach`]
//!   hands the victim's buffer to the [`DetachedColorQueue`], which
//!   carries it across the migration; [`MelyQueue::absorb`] either
//!   installs that buffer directly as the thief's new color-queue or,
//!   when the color already exists on the thief, drains it and drops
//!   the emptied buffer into the thief's pool. Buffers thus follow the
//!   events — no side-channel is needed to return them.
//! - [`MelyQueue::with_capacity`] pre-reserves the slot table, free
//!   list and index so cold-start pushes don't trigger incremental
//!   regrow/rehash; [`MelyQueue::new`] uses a default sizing.
//!
//! [`MelyQueue::buf_reuses`] counts pool hits; the threaded executor
//! surfaces it as `queue_buf_reuse` in [`crate::metrics::CoreMetrics`].
//!
//! The steal primitives ([`MelyQueue::choose_worthy`],
//! [`MelyQueue::detach`], [`MelyQueue::absorb`]) and their list/bucket
//! helpers carry `#[inline]` hints: an unrelated module addition once
//! shifted codegen layout enough to cost this path ~35 % on
//! `steal/mely_choose_and_detach_1k` (3383→4612 ns) without a single
//! line here changing. Hints pin the inlining decision instead of
//! leaving it to whole-crate layout luck.

use std::collections::VecDeque;

use fxhash::{FxBuildHasher, FxHashMap};

use crate::color::Color;
use crate::event::Event;

/// One color's pending events plus the bookkeeping the heuristics need.
#[derive(Debug)]
struct ColorQueue {
    color: Color,
    events: VecDeque<Event>,
    /// Sum of declared costs (the "stolen time" of this set).
    cum_cost: u64,
    /// Sum of weights: `cost / penalty` when penalties are enabled,
    /// plain cost otherwise (paper Section IV-B).
    cum_weighted: u64,
    prev: Option<usize>,
    next: Option<usize>,
    /// Position in the stealing-queue: `(interval, index)`.
    bucket: Option<(usize, usize)>,
}

/// A color-queue detached from a victim core by a steal, ready to be
/// absorbed by the thief.
///
/// Carries the victim's event buffer (capacity and all) across the
/// migration: [`MelyQueue::absorb`] reinstates it as the thief's
/// color-queue buffer, or empties it into an existing one and pools it.
/// Dropping a `DetachedColorQueue` without absorbing it discards the
/// stolen events *and* returns the buffer to the allocator — real
/// steals always absorb.
#[derive(Debug)]
pub struct DetachedColorQueue {
    color: Color,
    events: VecDeque<Event>,
    cum_cost: u64,
    cum_weighted: u64,
}

impl DetachedColorQueue {
    /// The stolen color.
    pub fn color(&self) -> Color {
        self.color
    }

    /// Number of stolen events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the set is empty (cannot happen for real steals).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total declared processing cost of the stolen set.
    pub fn cum_cost(&self) -> u64 {
        self.cum_cost
    }

    /// Raises every stolen event's visibility time to at least `t` (the
    /// completion time of the steal, under simulation).
    pub fn set_visible_at_floor(&mut self, t: u64) {
        for ev in &mut self.events {
            ev.visible_at = ev.visible_at.max(t);
        }
    }
}

/// Number of time-left intervals in the stealing-queue.
const INTERVALS: usize = 3;

/// Color-queue capacity [`MelyQueue::new`] pre-reserves (slots, free
/// list and index); enough for every workload in the evaluation to
/// start without a regrow.
const DEFAULT_COLOR_CAPACITY: usize = 32;

/// Maximum number of empty event buffers retained for reuse. Bounds
/// the memory a burst of distinct colors can pin: beyond this, freed
/// buffers go back to the allocator.
const BUF_POOL_MAX: usize = 64;

/// Event capacity of each pre-warmed pool buffer: a small power-of-two
/// starter. A color whose first burst exceeds it pays a one-time
/// regrow, after which the buffer's larger capacity persists through
/// the pool — so steady state is allocation-free regardless of burst
/// size (up to the pool bound).
const INITIAL_BUF_EVENTS: usize = 8;

/// Stealing-queue interval for cumulative weight `cum_weighted` under
/// steal-cost estimate `est`; `None` when not worth stealing. A free
/// function so the push/pop hot paths can evaluate it while the
/// color-queue is mutably borrowed.
#[inline(always)]
fn bucket_for(est: u64, cum_weighted: u64) -> Option<usize> {
    let est = est.max(1);
    if cum_weighted <= est {
        None
    } else if cum_weighted < 4 * est {
        Some(0)
    } else if cum_weighted < 16 * est {
        Some(1)
    } else {
        Some(2)
    }
}

/// The Mely per-core queue: core-queue of color-queues plus the
/// stealing-queue of worthy colors.
#[derive(Debug)]
pub struct MelyQueue {
    slots: Vec<Option<ColorQueue>>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
    index: FxHashMap<Color, usize>,
    buckets: [Vec<usize>; INTERVALS],
    /// Empty event buffers recycled from drained/absorbed color-queues,
    /// capacity intact; bounded by [`BUF_POOL_MAX`].
    buf_pool: Vec<VecDeque<Event>>,
    /// Color-queue creations served from the buffer pool.
    buf_reuses: u64,
    steal_cost_estimate: u64,
    use_penalty: bool,
    total_events: usize,
    total_cost: u64,
    /// Batch state: (slot, its color, events consumed in this batch).
    cur: Option<(usize, Color, u32)>,
}

impl MelyQueue {
    /// Creates an empty queue with the default pre-reserved capacity of
    /// `DEFAULT_COLOR_CAPACITY` color-queues. `use_penalty` selects
    /// whether cumulative weighted times divide by the events'
    /// workstealing penalties (the penalty-aware heuristic) or use raw
    /// costs.
    pub fn new(use_penalty: bool) -> Self {
        Self::with_capacity(use_penalty, DEFAULT_COLOR_CAPACITY)
    }

    /// Creates an empty queue pre-reserving room for `colors` distinct
    /// colors in the slot table, the free list, the index and the
    /// stealing-queue buckets, and pre-warming the buffer pool with as
    /// many (small) event buffers — so cold-start pushes never trigger
    /// an incremental regrow/rehash and the dispatch path is
    /// allocation-free from the very first event. `colors == 0` skips
    /// every reservation (the seed's lazy behavior, kept for the
    /// `mely_push_pop_churn_cold` benchmark control).
    pub fn with_capacity(use_penalty: bool, colors: usize) -> Self {
        let pool = colors.min(BUF_POOL_MAX);
        MelyQueue {
            slots: Vec::with_capacity(colors),
            free: Vec::with_capacity(colors),
            head: None,
            tail: None,
            index: FxHashMap::with_capacity_and_hasher(colors, FxBuildHasher::default()),
            buckets: std::array::from_fn(|_| Vec::with_capacity(colors)),
            buf_pool: (0..pool)
                .map(|_| VecDeque::with_capacity(INITIAL_BUF_EVENTS))
                .collect(),
            buf_reuses: 0,
            steal_cost_estimate: 0,
            use_penalty,
            total_events: 0,
            total_cost: 0,
            cur: None,
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.total_events
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.total_events == 0
    }

    /// Number of live color-queues.
    pub fn distinct_colors(&self) -> usize {
        self.index.len()
    }

    /// Sum of the declared costs of all queued events.
    pub fn total_cost(&self) -> u64 {
        self.total_cost
    }

    /// Current steal-cost estimate used for worthiness.
    pub fn steal_cost_estimate(&self) -> u64 {
        self.steal_cost_estimate
    }

    /// Color-queue creations that reused a pooled event buffer instead
    /// of allocating (the threaded executor's `queue_buf_reuse` metric).
    pub fn buf_reuses(&self) -> u64 {
        self.buf_reuses
    }

    /// Empty buffers currently pooled (tests and debugging).
    pub fn buf_pool_len(&self) -> usize {
        self.buf_pool.len()
    }

    /// Takes an event buffer from the pool, or allocates a fresh one.
    fn take_buf(&mut self) -> VecDeque<Event> {
        match self.buf_pool.pop() {
            Some(buf) => {
                self.buf_reuses += 1;
                buf
            }
            None => VecDeque::new(),
        }
    }

    /// Returns an emptied event buffer to the pool (capacity intact),
    /// unless the pool is full.
    fn put_buf(&mut self, buf: VecDeque<Event>) {
        debug_assert!(buf.is_empty(), "pooled buffers must be empty");
        if self.buf_pool.len() < BUF_POOL_MAX {
            self.buf_pool.push(buf);
        }
    }

    /// Updates the steal-cost estimate (from the runtime's monitoring).
    /// Re-classifies every color-queue when the estimate moved by more
    /// than 25% (stale interval assignments are tolerated in between;
    /// worthiness is re-validated at choice time).
    pub fn set_steal_cost_estimate(&mut self, est: u64) {
        let old = self.steal_cost_estimate;
        self.steal_cost_estimate = est;
        let big_change = old == 0 || est == 0 || est * 4 > old * 5 || old * 4 > est * 5;
        if big_change {
            // Sorted for determinism: HashMap iteration order must not
            // influence bucket contents (the simulator relies on it).
            let mut live: Vec<usize> = self.index.values().copied().collect();
            live.sort_unstable();
            for slot in live {
                self.rebucket(slot);
            }
        }
    }

    fn weight_of(&self, ev: &Event) -> u64 {
        if self.use_penalty {
            ev.weighted_cost()
        } else {
            ev.cost()
        }
    }

    /// Which stealing-queue interval a cumulative weight belongs to;
    /// `None` when the color is not worth stealing (paper Section III-B:
    /// worthy iff processing time exceeds the steal cost).
    fn desired_bucket(&self, cum_weighted: u64) -> Option<usize> {
        bucket_for(self.steal_cost_estimate, cum_weighted)
    }

    #[inline(always)]
    fn bucket_remove(&mut self, slot: usize) {
        let Some((b, i)) = self.slots[slot].as_ref().and_then(|c| c.bucket) else {
            return;
        };
        self.buckets[b].swap_remove(i);
        if let Some(&moved) = self.buckets[b].get(i) {
            self.slots[moved]
                .as_mut()
                .expect("bucketed slot is live")
                .bucket = Some((b, i));
        }
        self.slots[slot].as_mut().expect("slot is live").bucket = None;
    }

    #[inline(always)]
    fn rebucket(&mut self, slot: usize) {
        let cq = self.slots[slot].as_ref().expect("slot is live");
        let desired = self.desired_bucket(cq.cum_weighted);
        let current = cq.bucket.map(|(b, _)| b);
        if desired == current {
            return;
        }
        self.bucket_remove(slot);
        if let Some(b) = desired {
            self.buckets[b].push(slot);
            let i = self.buckets[b].len() - 1;
            self.slots[slot].as_mut().expect("slot is live").bucket = Some((b, i));
        }
    }

    #[inline(always)]
    fn alloc_slot(&mut self, cq: ColorQueue) -> usize {
        if let Some(slot) = self.free.pop() {
            self.slots[slot] = Some(cq);
            slot
        } else {
            self.slots.push(Some(cq));
            self.slots.len() - 1
        }
    }

    #[inline(always)]
    fn link_tail(&mut self, slot: usize) {
        let old_tail = self.tail;
        {
            let cq = self.slots[slot].as_mut().expect("slot is live");
            cq.prev = old_tail;
            cq.next = None;
        }
        if let Some(t) = old_tail {
            self.slots[t].as_mut().expect("tail is live").next = Some(slot);
        } else {
            self.head = Some(slot);
        }
        self.tail = Some(slot);
    }

    #[inline(always)]
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let cq = self.slots[slot].as_ref().expect("slot is live");
            (cq.prev, cq.next)
        };
        match prev {
            Some(p) => self.slots[p].as_mut().expect("prev is live").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].as_mut().expect("next is live").prev = prev,
            None => self.tail = prev,
        }
        let cq = self.slots[slot].as_mut().expect("slot is live");
        cq.prev = None;
        cq.next = None;
    }

    /// Pushes an event into its color-queue, creating (and appending to
    /// the core-queue) the color-queue if needed. Returns `true` when a
    /// new color-queue was created — the costlier path the paper notes
    /// for short-lived colors (Section V-C1).
    pub fn push(&mut self, ev: Event) -> bool {
        let w = self.weight_of(&ev);
        let cost = ev.cost();
        let color = ev.color();
        self.total_events += 1;
        self.total_cost += cost;
        if let Some(&slot) = self.index.get(&color) {
            let est = self.steal_cost_estimate;
            let cq = self.slots[slot].as_mut().expect("indexed slot is live");
            cq.events.push_back(ev);
            cq.cum_cost += cost;
            cq.cum_weighted += w;
            // Hot path: check the interval while the slot is already
            // borrowed; `rebucket` (which re-borrows) only runs when
            // the color actually moves.
            if bucket_for(est, cq.cum_weighted) != cq.bucket.map(|(b, _)| b) {
                self.rebucket(slot);
            }
            false
        } else {
            let mut events = self.take_buf();
            events.push_back(ev);
            let slot = self.alloc_slot(ColorQueue {
                color,
                events,
                cum_cost: cost,
                cum_weighted: w,
                prev: None,
                next: None,
                bucket: None,
            });
            self.link_tail(slot);
            self.index.insert(color, slot);
            self.rebucket(slot);
            true
        }
    }

    /// Ensures `cur` designates a live color-queue, honouring the batch
    /// threshold; returns the slot to pop from.
    fn normalize_cur(&mut self, batch_threshold: u32) -> Option<usize> {
        let threshold = batch_threshold.max(1);
        // Validate the current pointer (the slot may have been stolen or
        // recycled for another color).
        let valid = match self.cur {
            Some((slot, color, _)) => self
                .slots
                .get(slot)
                .and_then(|o| o.as_ref())
                .is_some_and(|cq| cq.color == color),
            None => false,
        };
        if !valid {
            self.cur = self.head.map(|s| {
                let c = self.slots[s].as_ref().expect("head is live").color;
                (s, c, 0)
            });
        }
        let (slot, _, consumed) = self.cur?;
        if consumed >= threshold {
            // Rotate to the next color-queue (wrapping to the head).
            let next = self.slots[slot]
                .as_ref()
                .expect("cur is live")
                .next
                .or(self.head)
                .expect("queue is non-empty");
            let c = self.slots[next].as_ref().expect("next is live").color;
            self.cur = Some((next, c, 0));
            return Some(next);
        }
        Some(slot)
    }

    /// Pops the next event: the head of the current color-queue, rotating
    /// after `batch_threshold` events of the same color (10 in all the
    /// paper's experiments).
    pub fn pop(&mut self, batch_threshold: u32) -> Option<Event> {
        if self.total_events == 0 {
            self.cur = None;
            return None;
        }
        let slot = self.normalize_cur(batch_threshold)?;
        let use_penalty = self.use_penalty;
        let est = self.steal_cost_estimate;
        let (ev, now_empty, next, need_rebucket) = {
            let cq = self.slots[slot].as_mut().expect("cur slot is live");
            let ev = cq
                .events
                .pop_front()
                .expect("live color-queue is non-empty");
            let w = if use_penalty {
                ev.weighted_cost()
            } else {
                ev.cost()
            };
            cq.cum_cost -= ev.cost();
            cq.cum_weighted -= w;
            let need = bucket_for(est, cq.cum_weighted) != cq.bucket.map(|(b, _)| b);
            (ev, cq.events.is_empty(), cq.next, need)
        };
        self.total_events -= 1;
        self.total_cost -= ev.cost();
        if now_empty {
            self.remove_slot(slot);
            self.cur = next.or(self.head).map(|s| {
                let c = self.slots[s].as_ref().expect("slot is live").color;
                (s, c, 0)
            });
        } else {
            if need_rebucket {
                self.rebucket(slot);
            }
            if let Some((s, c, n)) = self.cur {
                debug_assert_eq!(s, slot);
                self.cur = Some((s, c, n + 1));
            }
        }
        Some(ev)
    }

    fn remove_slot(&mut self, slot: usize) {
        self.bucket_remove(slot);
        self.unlink(slot);
        let cq = self.slots[slot].take().expect("slot is live");
        self.index.remove(&cq.color);
        self.free.push(slot);
        // The drained color's buffer keeps its capacity for the next
        // short-lived color instead of going back to the allocator.
        self.put_buf(cq.events);
    }

    /// Earliest time the event `pop` would return can run (`None` when
    /// empty). Simulation only.
    pub fn next_ready_time(&mut self, batch_threshold: u32) -> Option<u64> {
        if self.total_events == 0 {
            return None;
        }
        let slot = self.normalize_cur(batch_threshold)?;
        self.slots[slot]
            .as_ref()
            .expect("cur slot is live")
            .events
            .front()
            .map(|e| e.visible_at)
    }

    /// The color currently being batch-processed, if any (used by tests).
    pub fn current_color(&self) -> Option<Color> {
        self.cur.map(|(_, c, _)| c)
    }

    /// Base-algorithm color choice on the Mely structure: walks the
    /// core-queue and returns the first color-queue whose color is not
    /// `in_flight` and which holds less than half of the queued events
    /// (the Figure 2 rule). Returns `(slot, color-queues scanned)`.
    pub fn choose_scan(&self, in_flight: Option<Color>) -> Option<(usize, usize)> {
        let mut cursor = self.head;
        let mut scanned = 0;
        while let Some(slot) = cursor {
            let cq = self.slots[slot].as_ref().expect("linked slot is live");
            scanned += 1;
            if Some(cq.color) != in_flight && cq.events.len() * 2 < self.total_events {
                return Some((slot, scanned));
            }
            cursor = cq.next;
        }
        None
    }

    /// Time-left color choice: picks a worthy color-queue from the
    /// highest-interval of the stealing-queue, skipping `in_flight` and
    /// re-validating worthiness against the current estimate. O(1) in the
    /// common case.
    #[inline]
    pub fn choose_worthy(&self, in_flight: Option<Color>) -> Option<usize> {
        let est = self.steal_cost_estimate.max(1);
        for b in (0..INTERVALS).rev() {
            for &slot in self.buckets[b].iter().rev() {
                let cq = self.slots[slot].as_ref().expect("bucketed slot is live");
                if Some(cq.color) == in_flight {
                    continue;
                }
                if cq.cum_weighted > est {
                    return Some(slot);
                }
            }
        }
        None
    }

    /// Whether any color could be stolen right now under the given
    /// policy-specific chooser (`can_be_stolen` of Figure 2).
    pub fn can_be_stolen_base(&self) -> bool {
        self.distinct_colors() >= 2
    }

    /// The color stored in `slot` (test/debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a live color-queue.
    pub fn slot_color(&self, slot: usize) -> Color {
        self.slots[slot].as_ref().expect("slot is live").color
    }

    /// Number of events in `slot`'s color-queue.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a live color-queue.
    pub fn slot_len(&self, slot: usize) -> usize {
        self.slots[slot]
            .as_ref()
            .expect("slot is live")
            .events
            .len()
    }

    /// Cumulative declared cost of `slot`'s color-queue.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a live color-queue.
    pub fn slot_cum_cost(&self, slot: usize) -> u64 {
        self.slots[slot].as_ref().expect("slot is live").cum_cost
    }

    /// Detaches a whole color-queue in O(1) — Mely's steal primitive.
    /// The color's event buffer leaves with the returned set (the thief's
    /// [`MelyQueue::absorb`] reuses or pools it), so a steal allocates
    /// nothing on either side.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a live color-queue.
    #[inline]
    pub fn detach(&mut self, slot: usize) -> DetachedColorQueue {
        self.bucket_remove(slot);
        self.unlink(slot);
        let cq = self.slots[slot].take().expect("slot is live");
        self.index.remove(&cq.color);
        self.free.push(slot);
        self.total_events -= cq.events.len();
        self.total_cost -= cq.cum_cost;
        DetachedColorQueue {
            color: cq.color,
            events: cq.events,
            cum_cost: cq.cum_cost,
            cum_weighted: cq.cum_weighted,
        }
    }

    /// Absorbs a stolen color-queue (the `migrate` of Figure 2). If a
    /// color-queue for that color already exists (an event was registered
    /// here while the steal was in flight), the stolen — older — events
    /// are prepended to preserve per-color FIFO order. Returns the number
    /// of absorbed events.
    ///
    /// Allocation-free: the detached set's buffer either becomes the new
    /// color-queue's buffer directly or, when the color already exists,
    /// is emptied into it and dropped into this queue's buffer pool.
    #[inline]
    pub fn absorb(&mut self, mut d: DetachedColorQueue) -> usize {
        let n = d.events.len();
        self.total_events += n;
        self.total_cost += d.cum_cost;
        if let Some(&slot) = self.index.get(&d.color) {
            let cq = self.slots[slot].as_mut().expect("indexed slot is live");
            while let Some(ev) = d.events.pop_back() {
                cq.events.push_front(ev);
            }
            cq.cum_cost += d.cum_cost;
            cq.cum_weighted += d.cum_weighted;
            self.rebucket(slot);
            self.put_buf(d.events);
        } else {
            let slot = self.alloc_slot(ColorQueue {
                color: d.color,
                events: d.events,
                cum_cost: d.cum_cost,
                cum_weighted: d.cum_weighted,
                prev: None,
                next: None,
                bucket: None,
            });
            self.link_tail(slot);
            self.index.insert(d.color, slot);
            self.rebucket(slot);
        }
        n
    }

    /// Iterates `(color, pending)` pairs in core-queue order (tests).
    pub fn colors_in_order(&self) -> Vec<(Color, usize)> {
        let mut out = Vec::new();
        let mut cursor = self.head;
        while let Some(slot) = cursor {
            let cq = self.slots[slot].as_ref().expect("linked slot is live");
            out.push((cq.color, cq.events.len()));
            cursor = cq.next;
        }
        out
    }

    /// Checks every internal invariant; used by unit and property tests.
    ///
    /// # Panics
    ///
    /// Panics (with a description) when an invariant is violated.
    pub fn assert_invariants(&self) {
        // Walk the list, checking links and collecting slots.
        let mut seen = Vec::new();
        let mut cursor = self.head;
        let mut prev: Option<usize> = None;
        while let Some(slot) = cursor {
            let cq = self.slots[slot].as_ref().expect("linked slot must be live");
            assert_eq!(cq.prev, prev, "prev link broken at slot {slot}");
            assert!(!cq.events.is_empty(), "empty color-queue left in list");
            assert_eq!(
                self.index.get(&cq.color),
                Some(&slot),
                "index out of sync for {}",
                cq.color
            );
            let cost: u64 = cq.events.iter().map(|e| e.cost()).sum();
            assert_eq!(cq.cum_cost, cost, "cum_cost drift for {}", cq.color);
            let w: u64 = cq.events.iter().map(|e| self.weight_of(e)).sum();
            assert_eq!(cq.cum_weighted, w, "cum_weighted drift for {}", cq.color);
            if let Some((b, i)) = cq.bucket {
                assert_eq!(self.buckets[b][i], slot, "bucket index broken");
            }
            seen.push(slot);
            prev = Some(slot);
            cursor = cq.next;
        }
        assert_eq!(self.tail, prev, "tail pointer broken");
        assert_eq!(seen.len(), self.index.len(), "index size mismatch");
        let events: usize = seen
            .iter()
            .map(|&s| self.slots[s].as_ref().unwrap().events.len())
            .sum();
        assert_eq!(events, self.total_events, "total_events drift");
        let cost: u64 = seen
            .iter()
            .map(|&s| self.slots[s].as_ref().unwrap().cum_cost)
            .sum();
        assert_eq!(cost, self.total_cost, "total_cost drift");
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, &slot) in bucket.iter().enumerate() {
                let cq = self.slots[slot]
                    .as_ref()
                    .expect("bucketed slot must be live");
                assert_eq!(cq.bucket, Some((b, i)), "bucket back-pointer broken");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(color: u16, cost: u64) -> Event {
        Event::new(Color::new(color), cost)
    }

    #[test]
    fn push_groups_by_color_in_arrival_order() {
        let mut q = MelyQueue::new(true);
        assert!(q.push(ev(1, 10)));
        assert!(q.push(ev(2, 20)));
        assert!(!q.push(ev(1, 30)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.distinct_colors(), 2);
        assert_eq!(
            q.colors_in_order(),
            vec![(Color::new(1), 2), (Color::new(2), 1)]
        );
        q.assert_invariants();
    }

    #[test]
    fn pop_exhausts_color_then_moves_on() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 10));
        q.push(ev(1, 11));
        q.push(ev(2, 20));
        // Threshold high enough to drain color 1 first.
        assert_eq!(q.pop(10).unwrap().cost(), 10);
        assert_eq!(q.pop(10).unwrap().cost(), 11);
        assert_eq!(q.pop(10).unwrap().cost(), 20);
        assert!(q.pop(10).is_none());
        q.assert_invariants();
        assert_eq!(q.distinct_colors(), 0);
    }

    #[test]
    fn batch_threshold_rotates_colors() {
        let mut q = MelyQueue::new(true);
        for i in 0..5 {
            q.push(ev(1, 100 + i));
        }
        for i in 0..2 {
            q.push(ev(2, 200 + i));
        }
        // Threshold 2: two of color 1, then rotate to color 2, etc.
        let colors: Vec<u16> = (0..7).map(|_| q.pop(2).unwrap().color().value()).collect();
        assert_eq!(colors, [1, 1, 2, 2, 1, 1, 1]);
        q.assert_invariants();
    }

    #[test]
    fn threshold_zero_still_makes_progress() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 1));
        q.push(ev(1, 2));
        assert!(q.pop(0).is_some());
        assert!(q.pop(0).is_some());
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn detach_is_o1_and_removes_color() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 10));
        q.push(ev(2, 20));
        q.push(ev(2, 21));
        q.push(ev(3, 30));
        let slot = q.choose_scan(None).map(|(s, _)| s).unwrap();
        let d = q.detach(slot);
        assert_eq!(d.color(), Color::new(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d.cum_cost(), 10);
        assert_eq!(q.len(), 3);
        assert_eq!(q.distinct_colors(), 2);
        q.assert_invariants();
    }

    #[test]
    fn absorb_new_color_appends_to_tail() {
        let mut b = MelyQueue::new(true);
        b.push(ev(2, 5));
        let mut a = MelyQueue::new(true);
        a.push(ev(1, 10));
        a.push(ev(9, 1));
        a.push(ev(9, 1));
        let (slot, _) = a.choose_scan(None).unwrap();
        assert_eq!(a.slot_color(slot), Color::new(1));
        let d = a.detach(slot);
        let n = b.absorb(d);
        assert_eq!(n, 1);
        assert_eq!(
            b.colors_in_order(),
            vec![(Color::new(2), 1), (Color::new(1), 1)]
        );
        b.assert_invariants();
    }

    #[test]
    fn absorb_existing_color_prepends_stolen_events() {
        // Simulates the threaded race: thief already received a newer
        // event of the color while the steal was in flight.
        let mut victim = MelyQueue::new(true);
        victim.push(ev(7, 1).named("older-a"));
        victim.push(ev(7, 2).named("older-b"));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        let (slot, _) = victim.choose_scan(Some(Color::new(8))).unwrap();
        assert_eq!(victim.slot_color(slot), Color::new(7));
        let d = victim.detach(slot);

        let mut thief = MelyQueue::new(true);
        thief.push(ev(7, 3).named("newer"));
        thief.absorb(d);
        let names: Vec<&str> = (0..3).map(|_| thief.pop(10).unwrap().name()).collect();
        assert_eq!(names, ["older-a", "older-b", "newer"]);
        thief.assert_invariants();
    }

    #[test]
    fn choose_scan_applies_half_rule_and_in_flight() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        q.push(ev(2, 1));
        // Color 1 holds 3 of 4: rejected; color 2 qualifies.
        let (slot, scanned) = q.choose_scan(None).unwrap();
        assert_eq!(q.slot_color(slot), Color::new(2));
        assert_eq!(scanned, 2);
        // With color 2 in flight nothing qualifies.
        assert!(q.choose_scan(Some(Color::new(2))).is_none());
    }

    #[test]
    fn worthiness_tracks_estimate() {
        let mut q = MelyQueue::new(true);
        q.set_steal_cost_estimate(1_000);
        q.push(ev(1, 500)); // not worthy: 500 <= 1000
        assert!(q.choose_worthy(None).is_none());
        q.push(ev(1, 600)); // cum 1100 > 1000: worthy
        let slot = q.choose_worthy(None).unwrap();
        assert_eq!(q.slot_color(slot), Color::new(1));
        // In-flight color is excluded.
        assert!(q.choose_worthy(Some(Color::new(1))).is_none());
        q.assert_invariants();
    }

    #[test]
    fn worthy_choice_prefers_highest_interval() {
        let mut q = MelyQueue::new(true);
        q.set_steal_cost_estimate(100);
        q.push(ev(1, 150)); // interval 0 (>est, <4est)
        q.push(ev(2, 450)); // interval 1 (>=4est, <16est)
        q.push(ev(3, 5_000)); // interval 2 (>=16est)
        let slot = q.choose_worthy(None).unwrap();
        assert_eq!(q.slot_color(slot), Color::new(3));
        q.assert_invariants();
    }

    #[test]
    fn penalty_divides_weight_when_enabled() {
        let mut q = MelyQueue::new(true);
        q.set_steal_cost_estimate(100);
        // 10_000 cycles but penalty 1000 => weight 10: not worthy.
        q.push(ev(1, 10_000).with_penalty(1_000));
        assert!(q.choose_worthy(None).is_none());

        let mut q2 = MelyQueue::new(false); // penalties disabled
        q2.set_steal_cost_estimate(100);
        q2.push(ev(1, 10_000).with_penalty(1_000));
        assert!(q2.choose_worthy(None).is_some());
    }

    #[test]
    fn estimate_update_rebuckets() {
        let mut q = MelyQueue::new(true);
        q.set_steal_cost_estimate(1);
        q.push(ev(1, 50)); // worthy under est=1
        assert!(q.choose_worthy(None).is_some());
        q.set_steal_cost_estimate(1_000); // big change: rebucket
        assert!(q.choose_worthy(None).is_none());
        q.assert_invariants();
    }

    #[test]
    fn stolen_current_batch_color_is_handled() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 1));
        q.push(ev(1, 2));
        q.push(ev(2, 3));
        assert_eq!(q.pop(10).unwrap().color(), Color::new(1));
        // Steal the color we were batch-processing (allowed between
        // events: it is not in flight at this instant). The half rule
        // rejects both remaining singleton colors, so detach directly.
        assert!(q.choose_scan(None).is_none());
        let slot = *q.index.get(&Color::new(1)).unwrap();
        let d = q.detach(slot);
        assert_eq!(d.len(), 1);
        // pop falls over to the remaining color without panicking.
        assert_eq!(q.pop(10).unwrap().color(), Color::new(2));
        assert!(q.pop(10).is_none());
        q.assert_invariants();
    }

    #[test]
    fn can_be_stolen_base_needs_two_colors() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 1));
        q.push(ev(1, 1));
        assert!(!q.can_be_stolen_base());
        q.push(ev(2, 1));
        assert!(q.can_be_stolen_base());
    }

    #[test]
    fn next_ready_time_follows_discipline() {
        let mut q = MelyQueue::new(true);
        assert!(q.next_ready_time(10).is_none());
        let mut e = ev(1, 1);
        e.visible_at = 777;
        q.push(e);
        assert_eq!(q.next_ready_time(10), Some(777));
    }

    #[test]
    fn drained_buffers_are_pooled_and_reused() {
        // Cold queue (no pre-warmed pool) so the counters start at zero.
        let mut q = MelyQueue::with_capacity(true, 0);
        // Grow a color's buffer well past the default, then drain it.
        for i in 0..32 {
            q.push(ev(1, i));
        }
        while q.pop(100).is_some() {}
        assert_eq!(q.buf_pool_len(), 1);
        assert_eq!(q.buf_reuses(), 0);
        // A brand-new color takes the pooled buffer (capacity intact).
        q.push(ev(2, 5));
        assert_eq!(q.buf_pool_len(), 0);
        assert_eq!(q.buf_reuses(), 1);
        assert_eq!(q.pop(10).unwrap().cost(), 5);
        q.assert_invariants();
    }

    #[test]
    fn absorb_into_existing_color_pools_the_stolen_buffer() {
        let mut victim = MelyQueue::with_capacity(true, 0);
        victim.push(ev(7, 1));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        let (slot, _) = victim.choose_scan(None).unwrap();
        let d = victim.detach(slot);
        assert_eq!(d.color(), Color::new(7));

        let mut thief = MelyQueue::with_capacity(true, 0);
        thief.push(ev(7, 2));
        assert_eq!(thief.buf_pool_len(), 0);
        thief.absorb(d);
        // The stolen set's emptied buffer landed in the thief's pool.
        assert_eq!(thief.buf_pool_len(), 1);
        thief.assert_invariants();
    }

    #[test]
    fn absorb_new_color_reuses_the_stolen_buffer_directly() {
        let mut victim = MelyQueue::with_capacity(true, 0);
        victim.push(ev(7, 1));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        victim.push(ev(8, 1));
        let (slot, _) = victim.choose_scan(None).unwrap();
        let d = victim.detach(slot);

        let mut thief = MelyQueue::with_capacity(true, 0);
        thief.absorb(d);
        // No pooling needed: the buffer became the new color-queue.
        assert_eq!(thief.buf_pool_len(), 0);
        assert_eq!(thief.buf_reuses(), 0);
        assert_eq!(thief.pop(10).unwrap().color(), Color::new(7));
        thief.assert_invariants();
    }

    #[test]
    fn pool_is_capacity_bounded() {
        let mut q = MelyQueue::new(true);
        // Create and drain far more distinct colors than the pool holds.
        for round in 0..4u16 {
            for i in 0..100u16 {
                q.push(ev(1_000 + round * 100 + i, 1));
            }
            while q.pop(10).is_some() {}
        }
        assert!(q.buf_pool_len() <= 64, "pool must stay bounded");
        q.assert_invariants();
    }

    #[test]
    fn with_capacity_pre_reserves() {
        let mut q = MelyQueue::with_capacity(true, 16);
        for i in 0..16u16 {
            q.push(ev(i + 1, 1));
        }
        assert_eq!(q.distinct_colors(), 16);
        q.assert_invariants();
        while q.pop(10).is_some() {}
        assert!(q.is_empty());
    }

    #[test]
    fn slot_reuse_does_not_confuse_batch_pointer() {
        let mut q = MelyQueue::new(true);
        q.push(ev(1, 1));
        assert!(q.pop(10).is_some()); // drains color 1, frees slot 0
        q.push(ev(2, 1)); // reuses slot 0 for another color
        assert_eq!(q.pop(10).unwrap().color(), Color::new(2));
        q.assert_invariants();
    }
}
