//! Fault isolation: typed faults, color quarantine, and the policy
//! governing both executors' response to a panicking handler.
//!
//! The paper's per-color mutual exclusion gives the runtime a natural
//! blast-radius unit: everything a faulty handler can have corrupted is
//! scoped to its color — the handler state keyed by it, the events
//! queued behind it, the request it was carrying. Both executors
//! therefore wrap handler dispatch in
//! `catch_unwind(AssertUnwindSafe(..))` and, instead of letting the
//! panic unwind the worker (which previously aborted the whole run),
//! record a typed [`Fault`] and apply the configured [`FaultPolicy`]:
//!
//! - [`FaultPolicy::QuarantineColor`] (default) — the faulted color is
//!   quarantined: its queued events are discarded and counted as
//!   `shed_by_fault`, the in-flight request is recorded as failed, and
//!   subsequent admission for the color returns
//!   [`OverloadReason::Quarantined`](crate::admission::OverloadReason::Quarantined)
//!   so producers observe degradation instead of silence.
//! - [`FaultPolicy::ShedEvent`] — only the faulting event is lost; the
//!   color keeps running (for handlers whose shared state is known to
//!   survive a panic).
//! - [`FaultPolicy::Abort`] — the panic resumes unwinding (tests and
//!   debugging: fail fast instead of containing).
//!
//! A handler's buffered effects ([`crate::ctx::Ctx`] registrations,
//! charges, touches, completions) are applied only *after* it returns,
//! so a panicking execution's effects are discarded wholesale — a fault
//! never emits half a fan-out.
//!
//! Faults surface in the run's [`RunReport`](crate::metrics::RunReport):
//! the per-core counters (`faults`, `failed_requests`, `shed_by_fault`,
//! `quarantined_colors`), a deterministic per-core fault digest folded
//! into [`RunReport::fingerprint`](crate::metrics::RunReport::fingerprint),
//! and the capped per-run [`RunReport::fault_log`](crate::metrics::RunReport::fault_log).
//! Seeded fault *injection* — deterministic chaos on the sim executor —
//! lives in [`crate::fuzz::FaultPlan`].

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::color::{Color, COLOR_SPACE};
use crate::fuzz::FaultPlan;
use crate::handler::HandlerId;

/// What went wrong at a fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The handler's action panicked; carries the panic message (or a
    /// placeholder for non-string payloads).
    HandlerPanic(String),
    /// A seeded [`FaultPlan`] forced this dispatch to panic (the panic
    /// still travels through the real containment path).
    InjectedPanic,
    /// A seeded [`FaultPlan`] dropped this event before dispatch,
    /// modeling message loss. Drops do not quarantine the color.
    InjectedDrop,
    /// A worker thread died from a panic *outside* contained handler
    /// code (e.g. a queue invariant violation), detected at join time.
    WorkerDied {
        /// The core whose worker terminated.
        core: usize,
    },
}

impl FaultKind {
    /// Stable small code for digest folding (the message text of a
    /// [`FaultKind::HandlerPanic`] is deliberately not folded — payload
    /// formatting must not perturb fingerprints).
    pub(crate) fn code(&self) -> u64 {
        match self {
            FaultKind::HandlerPanic(_) => 1,
            FaultKind::InjectedPanic => 2,
            FaultKind::InjectedDrop => 3,
            FaultKind::WorkerDied { .. } => 4,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::HandlerPanic(msg) => write!(f, "handler panic: {msg}"),
            FaultKind::InjectedPanic => write!(f, "injected panic"),
            FaultKind::InjectedDrop => write!(f, "injected drop"),
            FaultKind::WorkerDied { core } => write!(f, "worker on core {core} died"),
        }
    }
}

/// One recorded fault: where it happened and what it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The color in whose context the fault occurred (`None` for worker
    /// deaths, which are not scoped to a color).
    pub color: Option<Color>,
    /// The handler dispatched at the fault site, if the event named one.
    pub handler: Option<HandlerId>,
    /// What happened.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.color {
            Some(c) => write!(f, "[color {}] {}", c.value(), self.kind),
            None => write!(f, "[no color] {}", self.kind),
        }
    }
}

/// How the runtime responds to a contained handler fault. Configured
/// per runtime via
/// [`RuntimeBuilder::fault_policy`](crate::runtime::RuntimeBuilder::fault_policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPolicy {
    /// Quarantine the faulted color: discard its queued events (counted
    /// as `shed_by_fault`), fail its in-flight request, and reject
    /// subsequent admission for the color with
    /// [`OverloadReason::Quarantined`](crate::admission::OverloadReason::Quarantined).
    /// The default: a panicking handler's state must be assumed
    /// corrupt, and the color is the unit that scopes it.
    #[default]
    QuarantineColor,
    /// Record the fault and drop only the faulting event; the color
    /// keeps executing.
    ShedEvent,
    /// Resume the unwind. On the sim executor the panic propagates out
    /// of `run()`; on the threaded executor the worker dies and is
    /// folded into the report as [`FaultKind::WorkerDied`]. For tests
    /// that want fail-fast behavior.
    Abort,
}

/// Lock-free membership bitmap over the 16-bit color space, plus a
/// count that makes the empty-set check (the hot-path gate on every
/// admission and dispatch) one relaxed load.
pub(crate) struct QuarantineSet {
    words: Box<[AtomicU64]>,
    count: AtomicUsize,
}

impl QuarantineSet {
    fn new() -> Self {
        let mut words = Vec::with_capacity(COLOR_SPACE / 64);
        words.resize_with(COLOR_SPACE / 64, || AtomicU64::new(0));
        QuarantineSet {
            words: words.into_boxed_slice(),
            count: AtomicUsize::new(0),
        }
    }

    /// Whether any color is quarantined — the near-free gate the hot
    /// paths check before paying for a bitmap probe.
    pub(crate) fn any(&self) -> bool {
        self.count.load(Ordering::Acquire) != 0
    }

    /// Marks `color` quarantined. Returns `true` if it was not already.
    pub(crate) fn quarantine(&self, color: Color) -> bool {
        let slot = color.value() as usize;
        let bit = 1u64 << (slot % 64);
        let prev = self.words[slot / 64].fetch_or(bit, Ordering::AcqRel);
        let newly = prev & bit == 0;
        if newly {
            self.count.fetch_add(1, Ordering::AcqRel);
        }
        newly
    }

    /// Whether `color` is quarantined.
    pub(crate) fn contains(&self, color: Color) -> bool {
        if !self.any() {
            return false;
        }
        let slot = color.value() as usize;
        self.words[slot / 64].load(Ordering::Acquire) & (1u64 << (slot % 64)) != 0
    }

    /// Number of quarantined colors.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }
}

/// Cap on the per-run [`Fault`] log: counters are exact, the log keeps
/// the first faults for diagnosis without unbounded growth under a
/// fault storm.
pub(crate) const MAX_FAULT_LOG: usize = 1024;

/// Shared supervision state of one runtime: the policy, the optional
/// seeded injection plan, the quarantine set, and the capped fault log.
/// Lives behind an `Arc` on the sim executor (run loop + mailbox) and
/// inside `Shared` on the threaded one.
pub(crate) struct FaultCtl {
    pub(crate) policy: FaultPolicy,
    pub(crate) plan: Option<FaultPlan>,
    pub(crate) quarantined: QuarantineSet,
    log: Mutex<Vec<Fault>>,
}

impl Default for FaultCtl {
    fn default() -> Self {
        FaultCtl::new(FaultPolicy::default(), None)
    }
}

impl FaultCtl {
    pub(crate) fn new(policy: FaultPolicy, plan: Option<FaultPlan>) -> Self {
        FaultCtl {
            policy,
            plan: plan.filter(|p| !p.is_noop()),
            quarantined: QuarantineSet::new(),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Appends to the capped fault log (counters stay exact even past
    /// the cap).
    pub(crate) fn record(&self, fault: Fault) {
        let mut log = self.log.lock();
        if log.len() < MAX_FAULT_LOG {
            log.push(fault);
        }
    }

    /// Clones the log for a report. Reports are snapshots (the sim's
    /// `report()` can be called repeatedly), so the log is not drained;
    /// like the quarantine set, it accumulates for the runtime's life,
    /// capped at [`MAX_FAULT_LOG`].
    pub(crate) fn log_snapshot(&self) -> Vec<Fault> {
        self.log.lock().clone()
    }

    pub(crate) fn is_quarantined(&self, color: Color) -> bool {
        self.quarantined.contains(color)
    }
}

/// Marker payload [`FaultPlan`]-injected panics unwind with, so the
/// containment site classifies them as [`FaultKind::InjectedPanic`]
/// rather than an organic handler bug.
pub(crate) struct InjectedPanicMarker;

/// Classifies a caught panic payload.
pub(crate) fn kind_of_panic(payload: &(dyn std::any::Any + Send)) -> FaultKind {
    if payload.is::<InjectedPanicMarker>() {
        return FaultKind::InjectedPanic;
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    FaultKind::HandlerPanic(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_set_tracks_membership_and_count() {
        let set = QuarantineSet::new();
        assert!(!set.any());
        assert!(!set.contains(Color::new(7)));
        assert!(set.quarantine(Color::new(7)), "newly quarantined");
        assert!(!set.quarantine(Color::new(7)), "already quarantined");
        assert!(set.quarantine(Color::new(65_535)));
        assert!(set.any());
        assert_eq!(set.len(), 2);
        assert!(set.contains(Color::new(7)));
        assert!(set.contains(Color::new(65_535)));
        assert!(!set.contains(Color::new(8)));
    }

    #[test]
    fn panic_payloads_classify() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(
            kind_of_panic(s.as_ref()),
            FaultKind::HandlerPanic("boom".to_string())
        );
        let s: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(
            kind_of_panic(s.as_ref()),
            FaultKind::HandlerPanic("owned".to_string())
        );
        let s: Box<dyn std::any::Any + Send> = Box::new(InjectedPanicMarker);
        assert_eq!(kind_of_panic(s.as_ref()), FaultKind::InjectedPanic);
        let s: Box<dyn std::any::Any + Send> = Box::new(17u64);
        assert!(
            matches!(kind_of_panic(s.as_ref()), FaultKind::HandlerPanic(m) if m.contains("non-string"))
        );
    }

    #[test]
    fn fault_log_caps() {
        let ctl = FaultCtl::new(FaultPolicy::QuarantineColor, None);
        for i in 0..(MAX_FAULT_LOG + 10) {
            ctl.record(Fault {
                color: Some(Color::new((i % 100) as u16)),
                handler: None,
                kind: FaultKind::InjectedDrop,
            });
        }
        assert_eq!(ctl.log_snapshot().len(), MAX_FAULT_LOG);
        assert_eq!(
            ctl.log_snapshot().len(),
            MAX_FAULT_LOG,
            "snapshots do not drain"
        );
    }

    #[test]
    fn display_is_informative() {
        let f = Fault {
            color: Some(Color::new(9)),
            handler: None,
            kind: FaultKind::HandlerPanic("oops".into()),
        };
        let s = format!("{f}");
        assert!(s.contains("color 9") && s.contains("oops"), "{s}");
        let w = Fault {
            color: None,
            handler: None,
            kind: FaultKind::WorkerDied { core: 3 },
        };
        assert!(format!("{w}").contains("core 3"));
    }

    #[test]
    fn default_policy_quarantines() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::QuarantineColor);
    }

    #[test]
    fn kind_codes_are_distinct() {
        let kinds = [
            FaultKind::HandlerPanic(String::new()),
            FaultKind::InjectedPanic,
            FaultKind::InjectedDrop,
            FaultKind::WorkerDied { core: 0 },
        ];
        let mut codes: Vec<u64> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }
}
