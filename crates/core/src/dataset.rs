//! Simulated data sets.
//!
//! The penalty-aware heuristic reasons about "the size of the data sets
//! accessed by events" (paper Section III-C): events touching small or
//! short-lived data are good steal candidates, events carrying large
//! long-lived data are not, because migrating them to a distant core
//! causes cache misses. In the simulation executor, a [`DataSet`] stands
//! for such a data region: it occupies a unique, non-overlapping range of
//! the simulated address space, and handlers *touch* it (wholly or
//! partially) through [`crate::ctx::Ctx`], which drives the cache
//! simulator and charges the resulting memory latency.

use std::fmt;
use std::sync::Arc;

/// A simulated memory region used by event handlers.
///
/// Created by the runtime's `alloc_dataset`; cloneable and shareable
/// across events via [`DataSetRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSet {
    id: u64,
    base: u64,
    len: u64,
}

/// Shared handle to a [`DataSet`].
pub type DataSetRef = Arc<DataSet>;

impl DataSet {
    pub(crate) fn new(id: u64, base: u64, len: u64) -> Self {
        DataSet { id, base, len }
    }

    /// Unique id of this data set.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Base address in the simulated address space.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataset#{} ({} B @ {:#x})", self.id, self.len, self.base)
    }
}

/// Bump allocator for simulated data sets, owned by the runtimes.
#[derive(Debug, Default)]
pub(crate) struct DataSetAlloc {
    next_id: u64,
    next_base: u64,
}

/// Datasets start above this address; lower addresses are reserved for
/// per-event continuation lines (see `sim`).
const DATASET_BASE: u64 = 1 << 32;

impl DataSetAlloc {
    pub(crate) fn new() -> Self {
        DataSetAlloc {
            next_id: 0,
            next_base: DATASET_BASE,
        }
    }

    /// Allocates a line-aligned region of `len` bytes.
    pub(crate) fn alloc(&mut self, len: u64) -> DataSetRef {
        let id = self.next_id;
        self.next_id += 1;
        let base = self.next_base;
        // Align the next region to a fresh 64-byte line and leave one
        // guard line so distinct datasets never share cache lines.
        self.next_base = (base + len + 127) & !63;
        Arc::new(DataSet::new(id, base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut a = DataSetAlloc::new();
        let d1 = a.alloc(100);
        let d2 = a.alloc(1);
        let d3 = a.alloc(64);
        for d in [&d1, &d2, &d3] {
            assert_eq!(d.base() % 64, 0, "line-aligned");
        }
        assert!(d1.base() + d1.len() <= d2.base());
        // Guard line: no shared cache line between consecutive sets.
        assert!(d2.base() / 64 > (d1.base() + d1.len() - 1) / 64);
        assert!(d3.base() / 64 > (d2.base() + d2.len() - 1) / 64);
        assert_ne!(d1.id(), d2.id());
    }

    #[test]
    fn display_and_accessors() {
        let d = DataSet::new(3, 128, 64);
        assert_eq!(d.id(), 3);
        assert_eq!(d.base(), 128);
        assert_eq!(d.len(), 64);
        assert!(!d.is_empty());
        assert!(d.to_string().contains("dataset#3"));
        assert!(DataSet::new(0, 0, 0).is_empty());
    }
}
