//! The executor-agnostic runtime API: one surface for both executors.
//!
//! The paper's central claim is that one scheduler design — colored
//! events plus the three workstealing heuristics — serves both analysis
//! (the deterministic simulation) and real execution (the threaded
//! runtime). This module makes that claim a *type*: applications are
//! written once against the [`Executor`] trait and dispatched to either
//! executor, the way libasync-smp applications targeted one event API
//! regardless of deployment.
//!
//! Three abstractions:
//!
//! - [`Executor`] — the runtime surface every executor implements:
//!   handler registration, dataset allocation, event registration,
//!   injector acquisition and [`Executor::run`]. Implemented by
//!   [`SimRuntime`], [`ThreadedRuntime`] and the unified [`Runtime`]
//!   enum that [`crate::runtime::RuntimeBuilder::build`] returns.
//! - [`Service`] — an application bundle (handler specs, initial
//!   events, and event actions dispatching on [`crate::ctx::Ctx`]).
//!   `rt.install(MyService)` works identically on both executors; the
//!   cross-executor conformance suite in the repository root asserts
//!   that a [`Service`] processes the *same number of events* on sim
//!   and threads.
//! - [`Injector`] — a cloneable, `Send` handle for registering events
//!   from outside the runtime (load generators, network poll loops).
//!   On the threaded executor it wraps the lock-free injection inboxes;
//!   on the simulator it feeds a mailbox the run loop drains at
//!   iteration boundaries, so external-producer code is also written
//!   once.
//!
//! # Injection semantics (the unified naming)
//!
//! The injection surface is the admission boundary of the runtime's
//! overload control ([`crate::admission`]): the infallible paths resolve
//! queue-limit hits through the configured
//! [`AdmissionPolicy`], the fallible `try_` twins
//! return the [`Overload`] to the caller. The full
//! four-way table (plus twins) lives on [`Injector`]; the former
//! `register`/`register_direct`/`register_after` trio on
//! [`RuntimeHandle`] has been removed in favor of the unified
//! `inject*` names.
//!
//! # Examples
//!
//! The same application, dispatched to either executor:
//!
//! ```
//! use mely_core::prelude::*;
//!
//! struct Burst(u16);
//!
//! impl Service for Burst {
//!     fn name(&self) -> &str {
//!         "burst"
//!     }
//!     fn install(&mut self, exec: &mut dyn Executor) {
//!         for i in 0..self.0 {
//!             exec.register(Event::new(Color::new(i + 1), 1_000));
//!         }
//!     }
//! }
//!
//! for kind in [ExecKind::Sim, ExecKind::Threaded] {
//!     let mut rt = RuntimeBuilder::new().cores(2).build(kind);
//!     rt.install(Burst(50));
//!     assert_eq!(rt.run().events_processed(), 50);
//! }
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::admission::{AdmissionCtl, AdmissionPolicy, Admitted, Overload, OverloadReason};
use crate::dataset::DataSetRef;
use crate::event::Event;
use crate::fault::FaultCtl;
use crate::handler::{HandlerId, HandlerSpec};
use crate::metrics::RunReport;
use crate::runtime::Flavor;
use crate::sim::SimRuntime;
use crate::steal::WsPolicy;
use crate::threaded::{RuntimeHandle, ThreadedRuntime};

/// Which executor to build: the deterministic simulation or the real
/// one-OS-thread-per-core runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecKind {
    /// The deterministic discrete-event simulator ([`SimRuntime`]).
    #[default]
    Sim,
    /// The real executor with one OS thread per core
    /// ([`ThreadedRuntime`]).
    Threaded,
}

impl fmt::Display for ExecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecKind::Sim => "sim",
            ExecKind::Threaded => "threaded",
        })
    }
}

impl FromStr for ExecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sim" | "simulation" | "simulated" => Ok(ExecKind::Sim),
            "threaded" | "threads" | "thread" => Ok(ExecKind::Threaded),
            other => Err(format!(
                "unknown executor kind {other:?} (try \"sim\" or \"threaded\")"
            )),
        }
    }
}

/// The executor-agnostic runtime surface.
///
/// Everything an application needs — registering handlers, allocating
/// data sets, seeding events, acquiring an [`Injector`] for external
/// producers, and running to completion — is available through this
/// trait on both executors, so the application is written once.
///
/// The trait is object-safe: service crates accept `&mut dyn Executor`
/// and never name a concrete runtime.
pub trait Executor {
    /// Which executor this is.
    fn kind(&self) -> ExecKind;

    /// Number of cores (simulated or worker threads).
    fn cores(&self) -> usize;

    /// Queue architecture this executor runs.
    fn flavor(&self) -> Flavor;

    /// The active workstealing policy.
    fn policy(&self) -> WsPolicy;

    /// Registers an application handler (name, cost annotation,
    /// penalty). Must be called before [`Executor::run`].
    fn register_handler(&mut self, spec: HandlerSpec) -> HandlerId;

    /// The runtime's current cost estimate for a handler: the
    /// annotation, or the monitored EWMA for
    /// [`crate::handler::CostSource::Measured`] handlers.
    fn handler_estimate(&self, id: HandlerId) -> u64;

    /// Allocates a data set of `len` bytes (simulated addresses; swept
    /// through the cache simulator under sim, accounted under threads).
    fn alloc_dataset(&mut self, len: u64) -> DataSetRef;

    /// Registers an event. It is dispatched to the core owning its
    /// color (initially the color's home core).
    fn register(&mut self, ev: Event);

    /// Registers an event and pins its color to `core`, overriding the
    /// hash dispatch — how the microbenchmarks create their initial
    /// imbalance.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    fn register_pinned(&mut self, ev: Event, core: usize);

    /// A cloneable, `Send` handle for injecting events from other
    /// threads while the runtime runs.
    fn injector(&self) -> Injector;

    /// Runs until every registered event (and every event they spawn)
    /// has executed — or a handler called
    /// [`crate::ctx::Ctx::stop_runtime`], an injector called
    /// [`Injector::stop`], or (sim only) `max_cycles` elapsed — then
    /// returns the report. Can be called again after registering more
    /// events.
    fn run(&mut self) -> RunReport;

    /// Installs a [`Service`]: the service registers its handlers and
    /// seeds its initial events, then is handed back so the caller can
    /// query it after [`Executor::run`].
    fn install<S: Service>(&mut self, mut svc: S) -> S
    where
        Self: Sized,
    {
        svc.install(self);
        svc
    }
}

/// An application bundle: handler specs, initial events, and a
/// [`crate::ctx::Ctx`]-driven dispatch entry (the actions attached to
/// its events).
///
/// A `Service` never names a concrete executor, so the same
/// implementation runs unmodified on the simulator and on threads:
///
/// ```
/// use mely_core::prelude::*;
///
/// struct Pings;
/// impl Service for Pings {
///     fn name(&self) -> &str {
///         "pings"
///     }
///     fn install(&mut self, exec: &mut dyn Executor) {
///         let h = exec.register_handler(HandlerSpec::new("ping").cost(500));
///         exec.register(Event::for_handler(Color::new(1), h).with_action(|ctx| {
///             ctx.register(Event::new(Color::new(2), 500));
///         }));
///     }
/// }
///
/// let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
/// rt.install(Pings);
/// assert_eq!(rt.run().events_processed(), 2);
/// ```
pub trait Service {
    /// Human-readable name (reports, conformance harnesses).
    fn name(&self) -> &str;

    /// Registers the service's handlers and seeds its initial events.
    /// Follow-up work is dispatched from event actions through
    /// [`crate::ctx::Ctx::register`] / [`crate::ctx::Ctx::register_after`],
    /// which are executor-agnostic by construction.
    fn install(&mut self, exec: &mut dyn Executor);
}

/// The simulator's external-producer mailbox: a mutex-protected buffer
/// the run loop drains at iteration boundaries, giving [`Injector`]s a
/// target on an executor that is otherwise single-threaded.
///
/// Determinism note: a simulation that only ever registers events from
/// its own thread (the normal case) never observes the mailbox and
/// stays fully deterministic. Cross-thread injection into a *running*
/// simulation is inherently racy — the drain order depends on OS
/// scheduling — and is intended for running threaded-style producer
/// code unmodified, not for cycle-accurate claims.
pub(crate) struct SimMailbox {
    /// Buffered entries: immediate events and (delay, event) pairs.
    queue: Mutex<Vec<MailboxEntry>>,
    /// Entries pushed but not yet drained by the run loop.
    buffered: AtomicU64,
    /// Live keepalive guards: the run loop does not exit while nonzero.
    keepalive: AtomicU64,
    /// Hard-stop request ([`Injector::stop`]).
    stop: AtomicBool,
    /// Whether the simulated machine has nothing left to execute
    /// (queues and timers empty). Maintained by the run loop; starts
    /// `true` (an unstarted machine is empty). Lets
    /// [`Injector::stop_when_idle`] wait for *execution*, not just
    /// absorption — the same contract as the threaded executor's
    /// outstanding-event count.
    idle: AtomicBool,
    /// Queue limits, admission policy, per-color occupancy and the
    /// reject/shed counters (see [`crate::admission`]).
    pub(crate) admission: AdmissionCtl,
    /// Fault policy, quarantine membership and the fault log, shared
    /// with the run loop (see [`crate::fault`]). Injection into a
    /// quarantined color is refused at this boundary so producers see
    /// the failure instead of feeding a drain.
    pub(crate) faults: Arc<FaultCtl>,
    /// Simulated core count (for the per-core admission check's home-core
    /// dispatch estimate).
    num_cores: usize,
    /// Per-core queue lengths as last published by the run loop; empty
    /// unless a per-core limit is configured. An approximation for
    /// producers: exact between run-loop iterations, stale mid-step.
    core_occupancy: Box<[AtomicU32]>,
}

impl Default for SimMailbox {
    fn default() -> Self {
        SimMailbox::new(AdmissionCtl::unbounded(), 1, Arc::default())
    }
}

pub(crate) enum MailboxEntry {
    Now(Event),
    After(u64, Event),
}

impl MailboxEntry {
    fn event(&self) -> &Event {
        match self {
            MailboxEntry::Now(ev) | MailboxEntry::After(_, ev) => ev,
        }
    }

    fn event_mut(&mut self) -> &mut Event {
        match self {
            MailboxEntry::Now(ev) | MailboxEntry::After(_, ev) => ev,
        }
    }
}

impl SimMailbox {
    pub(crate) fn new(admission: AdmissionCtl, num_cores: usize, faults: Arc<FaultCtl>) -> Self {
        let tracked = if admission.limits.per_core_events.is_some() {
            num_cores
        } else {
            0
        };
        let mut occ = Vec::with_capacity(tracked);
        occ.resize_with(tracked, || AtomicU32::new(0));
        SimMailbox {
            queue: Mutex::new(Vec::new()),
            buffered: AtomicU64::new(0),
            keepalive: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            idle: AtomicBool::new(true),
            admission,
            faults,
            num_cores,
            core_occupancy: occ.into_boxed_slice(),
        }
    }

    fn push_raw(&self, entry: MailboxEntry) {
        // Count before publishing so `outstanding` never under-reports
        // (the symmetric discipline to the threaded inbox's counter).
        self.buffered.fetch_add(1, Ordering::AcqRel);
        self.queue.lock().push(entry);
    }

    /// Enqueue without limit checks (the `inject_locked` /
    /// `inject_after` paths). Two checks still apply: a stopped run
    /// loop never drains its mailbox, so buffering into it would leak
    /// the event forever — the historical footgun — and a quarantined
    /// color's events would only be drained and discarded by the run
    /// loop anyway. Such pushes are dropped and counted as a reject
    /// plus a shed instead.
    fn push_unchecked(&self, entry: MailboxEntry) {
        if self.stop_requested() {
            self.admission.note_reject();
            self.admission.note_shed(OverloadReason::InboxBacklog);
            return;
        }
        if self.faults.is_quarantined(entry.event().color()) {
            self.admission.note_reject();
            self.admission.note_shed(OverloadReason::Quarantined);
            return;
        }
        self.push_raw(entry);
    }

    /// The fallible admission path into the mailbox: checks the stop
    /// flag and the configured limits, claiming the per-color slot last.
    /// Returns the entry on rejection so policy loops can retry it.
    /// Does not count the reject — the caller owns attempt accounting.
    fn try_push(&self, mut entry: MailboxEntry) -> Result<Admitted, (Overload, MailboxEntry)> {
        if self.stop_requested() {
            // The run loop will never drain again: unconditional reject
            // (reason InboxBacklog — the backlog can only grow).
            let ov = self.admission.overload(
                OverloadReason::InboxBacklog,
                self.buffered.load(Ordering::Acquire),
            );
            return Err((ov, entry));
        }
        // The quarantine gate precedes the unbounded fast path: a
        // poisoned color rejects even on a runtime with no queue limits
        // configured. `Overload::reason` tells the producer this is not
        // backpressure — there is no occupancy to drain, so no hint.
        if self.faults.is_quarantined(entry.event().color()) {
            let ov = self.admission.overload(OverloadReason::Quarantined, 0);
            return Err((ov, entry));
        }
        if self.admission.is_unbounded() {
            self.push_raw(entry);
            return Ok(Admitted);
        }
        let lim = self.admission.limits;
        let color = entry.event().color();
        if let Some(cap) = lim.per_core_events {
            // Dispatch estimate: the color's home core (exact unless
            // workstealing moved the color), occupancy as last published
            // by the run loop.
            let home = color.home_core(self.num_cores);
            let occ = self.core_occupancy[home].load(Ordering::Acquire);
            if occ >= cap {
                return Err((
                    self.admission
                        .overload(OverloadReason::PerCoreFull, u64::from(occ)),
                    entry,
                ));
            }
        }
        if let Some(cap) = lim.inbox_backlog {
            let occ = self.buffered.load(Ordering::Acquire);
            if occ >= u64::from(cap) {
                return Err((
                    self.admission.overload(OverloadReason::InboxBacklog, occ),
                    entry,
                ));
            }
        }
        if let Some(cap) = lim.per_color_events {
            if !self.admission.try_claim_color(color.value() as usize, cap) {
                return Err((
                    self.admission
                        .overload(OverloadReason::ColorHot, u64::from(cap)),
                    entry,
                ));
            }
            entry.event_mut().color_counted = true;
        }
        self.push_raw(entry);
        Ok(Admitted)
    }

    /// The infallible admission path: resolves a limit hit per `policy`
    /// — shed (drop + count) or wait for the run loop to drain, escaping
    /// by shedding if the simulation is stopped while the producer
    /// waits. (The `retry_after_hint` is in *virtual* cycles, which a
    /// real-time producer thread cannot sleep on; both waiting policies
    /// therefore yield between attempts here.)
    pub(crate) fn push_with_policy(&self, mut entry: MailboxEntry, policy: AdmissionPolicy) {
        let mut first_reject = true;
        loop {
            entry = match self.try_push(entry) {
                Ok(_) => return,
                Err((ov, back)) => {
                    if first_reject {
                        self.admission.note_reject();
                        first_reject = false;
                    }
                    // Quarantine never clears while the runtime runs, so
                    // the waiting policies shed too — blocking on a
                    // poisoned color would hang the producer forever.
                    if policy == AdmissionPolicy::Shed
                        || ov.reason == OverloadReason::Quarantined
                        || self.stop_requested()
                    {
                        self.admission.note_shed(ov.reason);
                        return;
                    }
                    std::thread::yield_now();
                    back
                }
            };
        }
    }

    /// Publishes one core's queue length for the per-core admission
    /// check (no-op unless a per-core limit is configured).
    pub(crate) fn publish_core_occupancy(&self, core: usize, len: u32) {
        if let Some(slot) = self.core_occupancy.get(core) {
            slot.store(len, Ordering::Release);
        }
    }

    /// Whether undrained entries are buffered. The sim run loop checks
    /// this before draining so schedule perturbation only consults its
    /// RNG when there is actually something to absorb.
    pub(crate) fn has_buffered(&self) -> bool {
        self.buffered.load(Ordering::Acquire) > 0
    }

    /// Takes the whole backlog. Called by the sim run loop.
    pub(crate) fn drain(&self) -> Vec<MailboxEntry> {
        if self.buffered.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let batch = std::mem::take(&mut *self.queue.lock());
        self.buffered
            .fetch_sub(batch.len() as u64, Ordering::AcqRel);
        batch
    }

    /// Whether the run loop must keep spinning with an empty machine.
    pub(crate) fn holds_open(&self) -> bool {
        self.keepalive.load(Ordering::Acquire) > 0 || self.buffered.load(Ordering::Acquire) > 0
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub(crate) fn clear_stop(&self) {
        self.stop.store(false, Ordering::Release);
    }

    /// Run-loop bookkeeping for the machine-idle flag (see the `idle`
    /// field).
    pub(crate) fn set_machine_idle(&self, idle: bool) {
        self.idle.store(idle, Ordering::Release);
    }

    fn machine_idle(&self) -> bool {
        self.idle.load(Ordering::Acquire)
    }
}

#[derive(Clone)]
enum InjectorInner {
    Sim(Arc<SimMailbox>),
    Threaded(RuntimeHandle),
}

/// A cloneable, `Send` handle for registering events into a running
/// executor from other threads — the unified face of the threaded
/// runtime's [`RuntimeHandle`] and the simulator's mailbox.
///
/// Obtained from [`Executor::injector`]; also constructible from a
/// [`RuntimeHandle`] via `From`, so pre-existing threaded code can hand
/// its handle to the trait-based bridges unchanged.
///
/// # The injection surface
///
/// The injector is the *admission boundary* of the runtime's overload
/// control ([`crate::admission`]). Four ways in, each with one job:
///
/// | method | admission | semantics |
/// |---|---|---|
/// | [`Injector::inject`] | infallible — a limit hit is resolved by the [`AdmissionPolicy`] (block / shed / pace) | enqueue to the color's owning core through its lock-free inbox (threaded) or the run-loop mailbox (sim). The default fire-and-forget path: producers never contend on a dispatch lock. |
/// | [`Injector::try_inject`] | fallible — returns `Err(`[`Overload`]`)` naming the limit hit; the event is dropped | same enqueue; the caller owns the overload response (retry, degrade, reject upstream). |
/// | [`Injector::inject_locked`] | none — bypasses queue limits entirely | enqueue by taking the owning core's dispatch spinlock (threaded). The pre-inbox legacy path, kept for measuring what the inbox buys; identical routing to `inject` on the simulator. |
/// | [`Injector::inject_after`] | none — timers are scheduled work, not offered load | enqueue after a delay in cycles (virtual under sim, cycle-counter under threads). |
///
/// [`Injector::try_inject_after`] is the fallible twin of
/// `inject_after`: its admission check runs at *registration* time
/// against current occupancy, and an admitted event holds its per-color
/// slot across the delay. On a stopped simulator every path rejects
/// (and the infallible ones drop + count) instead of buffering forever.
#[derive(Clone)]
pub struct Injector {
    inner: InjectorInner,
    /// Per-injector override of the runtime's [`AdmissionPolicy`]
    /// (`None` = use the runtime default).
    policy: Option<AdmissionPolicy>,
}

impl Injector {
    pub(crate) fn for_sim(mailbox: Arc<SimMailbox>) -> Self {
        Injector {
            inner: InjectorInner::Sim(mailbox),
            policy: None,
        }
    }

    /// Which executor this injector feeds.
    pub fn kind(&self) -> ExecKind {
        match &self.inner {
            InjectorInner::Sim(_) => ExecKind::Sim,
            InjectorInner::Threaded(_) => ExecKind::Threaded,
        }
    }

    /// Returns an injector whose *infallible* paths resolve limit hits
    /// with `policy` instead of the runtime default — admission is
    /// selectable per producer (e.g. a shedding ingress next to a
    /// blocking batch loader on one runtime). Clones inherit the
    /// override.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The [`AdmissionPolicy`] override this injector carries, if any
    /// (set by [`Injector::with_admission`]).
    pub fn admission_override(&self) -> Option<AdmissionPolicy> {
        self.policy
    }

    /// Registers an event through the owning core's lock-free injection
    /// inbox (threaded) or the run-loop mailbox (sim) — the producer
    /// never contends on a dispatch lock. The canonical *infallible*
    /// injection path: with bounded queues, a limit hit is resolved by
    /// the effective [`AdmissionPolicy`] rather than reported (see the
    /// table on [`Injector`]).
    pub fn inject(&self, ev: Event) {
        match &self.inner {
            InjectorInner::Sim(m) => m.push_with_policy(
                MailboxEntry::Now(ev),
                self.policy.unwrap_or(m.admission.policy),
            ),
            InjectorInner::Threaded(h) => match self.policy {
                None => h.inject(ev),
                Some(p) => h.inject_with_policy(ev, p),
            },
        }
    }

    /// The fallible admission path: admits `ev` or returns the
    /// [`Overload`] naming the limit that rejected it (the event is
    /// dropped). Never blocks and never consults the
    /// [`AdmissionPolicy`]; each rejected call counts one
    /// `admission_rejects`.
    pub fn try_inject(&self, ev: Event) -> Result<Admitted, Overload> {
        match &self.inner {
            InjectorInner::Sim(m) => m.try_push(MailboxEntry::Now(ev)).map_err(|(ov, _entry)| {
                m.admission.note_reject();
                ov
            }),
            InjectorInner::Threaded(h) => h.try_inject(ev),
        }
    }

    /// Registers an event by taking the owning core's dispatch spinlock
    /// directly (threaded executor) — the pre-inbox injection path,
    /// kept so benchmarks can measure what the inbox buys. On the
    /// simulator this routes like [`Injector::inject`]. Not an
    /// admission boundary: queue limits are bypassed (legacy semantics,
    /// unchanged by the overload redesign).
    pub fn inject_locked(&self, ev: Event) {
        match &self.inner {
            InjectorInner::Sim(m) => m.push_unchecked(MailboxEntry::Now(ev)),
            InjectorInner::Threaded(h) => h.inject_locked(ev),
        }
    }

    /// Registers an event to fire after `delay` cycles: virtual cycles
    /// under the simulator, calibrated cycle-counter cycles under the
    /// threaded executor. Infallible and unchecked — a timer firing is
    /// scheduled work, not offered load; use
    /// [`Injector::try_inject_after`] to subject delayed work to
    /// admission control.
    pub fn inject_after(&self, delay: u64, ev: Event) {
        match &self.inner {
            InjectorInner::Sim(m) => m.push_unchecked(MailboxEntry::After(delay, ev)),
            InjectorInner::Threaded(h) => h.inject_after(delay, ev),
        }
    }

    /// The fallible twin of [`Injector::inject_after`]: the admission
    /// check runs *now*, against current occupancy, and an admitted
    /// event holds its per-color slot across the delay.
    pub fn try_inject_after(&self, delay: u64, ev: Event) -> Result<Admitted, Overload> {
        match &self.inner {
            InjectorInner::Sim(m) => {
                m.try_push(MailboxEntry::After(delay, ev))
                    .map_err(|(ov, _entry)| {
                        m.admission.note_reject();
                        ov
                    })
            }
            InjectorInner::Threaded(h) => h.try_inject_after(delay, ev),
        }
    }

    /// Asks the executor to stop at the next opportunity; events still
    /// queued may not execute (the usual producer/stop race).
    pub fn stop(&self) {
        match &self.inner {
            InjectorInner::Sim(m) => m.stop.store(true, Ordering::Release),
            InjectorInner::Threaded(h) => h.stop(),
        }
    }

    /// Events handed to this executor but not yet executed (threaded)
    /// or not yet absorbed by the run loop (sim). An estimate intended
    /// for idle checks, not exact accounting.
    pub fn outstanding(&self) -> u64 {
        match &self.inner {
            InjectorInner::Sim(m) => m.buffered.load(Ordering::Acquire),
            InjectorInner::Threaded(h) => h.outstanding(),
        }
    }

    /// Keeps the executor alive while the returned guard lives, even
    /// with no events pending — the idiom for external producers that
    /// will inject *later*. Without it, the threaded workers exit (and
    /// the sim run loop returns) the moment everything registered so
    /// far has executed. Pair with [`Injector::stop_when_idle`].
    pub fn keepalive(&self) -> KeepAlive {
        match &self.inner {
            InjectorInner::Sim(m) => {
                m.keepalive.fetch_add(1, Ordering::AcqRel);
                let m = Arc::clone(m);
                KeepAlive::new(move || {
                    m.keepalive.fetch_sub(1, Ordering::AcqRel);
                })
            }
            InjectorInner::Threaded(h) => h.keepalive(),
        }
    }

    /// Blocks until every registered event has been executed, then
    /// requests a stop — identical semantics on both executors, so the
    /// producer idiom `pool.join(); injector.stop_when_idle();
    /// drop(keepalive);` ports unchanged. On the threaded executor this
    /// watches the outstanding-event count; on the simulator it waits
    /// for the mailbox to drain *and* the simulated machine to go idle
    /// (queues and timers empty). Events injected concurrently with the
    /// stop may or may not run — the usual producer/stop race.
    pub fn stop_when_idle(&self) {
        match &self.inner {
            InjectorInner::Sim(m) => {
                while m.buffered.load(Ordering::Acquire) > 0 || !m.machine_idle() {
                    std::thread::yield_now();
                }
                m.stop.store(true, Ordering::Release);
            }
            InjectorInner::Threaded(h) => h.stop_when_idle(),
        }
    }
}

impl From<RuntimeHandle> for Injector {
    fn from(handle: RuntimeHandle) -> Self {
        Injector {
            inner: InjectorInner::Threaded(handle),
            policy: None,
        }
    }
}

impl From<&RuntimeHandle> for Injector {
    fn from(handle: &RuntimeHandle) -> Self {
        Injector::from(handle.clone())
    }
}

impl fmt::Debug for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector")
            .field("kind", &self.kind())
            .finish()
    }
}

/// RAII guard from [`Injector::keepalive`] /
/// [`RuntimeHandle::keepalive`]; dropping it lets the executor wind
/// down once no real events remain.
pub struct KeepAlive {
    release: Option<Box<dyn FnOnce() + Send>>,
}

impl KeepAlive {
    pub(crate) fn new(release: impl FnOnce() + Send + 'static) -> Self {
        KeepAlive {
            release: Some(Box::new(release)),
        }
    }
}

impl Drop for KeepAlive {
    fn drop(&mut self) {
        if let Some(release) = self.release.take() {
            // Guards are held by producer threads precisely so the
            // runtime outlives them; if such a thread panics, the guard
            // drops during its unwind, and a release that panicked here
            // would escalate to a double-panic abort. Contain it: the
            // counter decrement is the part that must happen.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(release));
        }
    }
}

impl fmt::Debug for KeepAlive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("KeepAlive")
    }
}

/// The unified runtime returned by
/// [`crate::runtime::RuntimeBuilder::build`]: either executor behind
/// one concrete type, usable wherever `&mut dyn Executor` is.
pub enum Runtime {
    /// The deterministic simulator (boxed: the sim state is large and
    /// the enum is moved by value).
    Sim(Box<SimRuntime>),
    /// The threaded executor.
    Threaded(ThreadedRuntime),
}

impl Runtime {
    /// The concrete simulator, when this is [`Runtime::Sim`] — for
    /// sim-only facilities (`config()`, `virtual_now()`, cache stats).
    pub fn as_sim(&self) -> Option<&SimRuntime> {
        match self {
            Runtime::Sim(rt) => Some(rt),
            Runtime::Threaded(_) => None,
        }
    }

    /// Mutable access to the concrete simulator, when this is
    /// [`Runtime::Sim`].
    pub fn as_sim_mut(&mut self) -> Option<&mut SimRuntime> {
        match self {
            Runtime::Sim(rt) => Some(rt),
            Runtime::Threaded(_) => None,
        }
    }

    /// The concrete threaded runtime, when this is
    /// [`Runtime::Threaded`] — for threaded-only facilities
    /// ([`ThreadedRuntime::handle`]).
    pub fn as_threaded(&self) -> Option<&ThreadedRuntime> {
        match self {
            Runtime::Sim(_) => None,
            Runtime::Threaded(rt) => Some(rt),
        }
    }

    /// Mutable access to the concrete threaded runtime, when this is
    /// [`Runtime::Threaded`].
    pub fn as_threaded_mut(&mut self) -> Option<&mut ThreadedRuntime> {
        match self {
            Runtime::Sim(_) => None,
            Runtime::Threaded(rt) => Some(rt),
        }
    }

    /// Unwraps the concrete simulator — for experiment drivers that
    /// need sim-only facilities (virtual time, the cache simulator)
    /// while still constructing through the unified builder.
    ///
    /// # Panics
    ///
    /// Panics if this is the threaded executor.
    pub fn into_sim(self) -> SimRuntime {
        match self {
            Runtime::Sim(rt) => *rt,
            Runtime::Threaded(_) => panic!("runtime is threaded, not sim"),
        }
    }

    /// Unwraps the concrete threaded runtime.
    ///
    /// # Panics
    ///
    /// Panics if this is the simulator.
    pub fn into_threaded(self) -> ThreadedRuntime {
        match self {
            Runtime::Sim(_) => panic!("runtime is sim, not threaded"),
            Runtime::Threaded(rt) => rt,
        }
    }

    fn exec(&self) -> &dyn Executor {
        match self {
            Runtime::Sim(rt) => &**rt,
            Runtime::Threaded(rt) => rt,
        }
    }

    fn exec_mut(&mut self) -> &mut dyn Executor {
        match self {
            Runtime::Sim(rt) => &mut **rt,
            Runtime::Threaded(rt) => rt,
        }
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("kind", &self.kind())
            .field("cores", &self.cores())
            .field("flavor", &self.flavor())
            .finish()
    }
}

impl Executor for Runtime {
    fn kind(&self) -> ExecKind {
        self.exec().kind()
    }

    fn cores(&self) -> usize {
        self.exec().cores()
    }

    fn flavor(&self) -> Flavor {
        self.exec().flavor()
    }

    fn policy(&self) -> WsPolicy {
        self.exec().policy()
    }

    fn register_handler(&mut self, spec: HandlerSpec) -> HandlerId {
        self.exec_mut().register_handler(spec)
    }

    fn handler_estimate(&self, id: HandlerId) -> u64 {
        self.exec().handler_estimate(id)
    }

    fn alloc_dataset(&mut self, len: u64) -> DataSetRef {
        self.exec_mut().alloc_dataset(len)
    }

    fn register(&mut self, ev: Event) {
        self.exec_mut().register(ev);
    }

    fn register_pinned(&mut self, ev: Event, core: usize) {
        self.exec_mut().register_pinned(ev, core);
    }

    fn injector(&self) -> Injector {
        self.exec().injector()
    }

    fn run(&mut self) -> RunReport {
        self.exec_mut().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::runtime::RuntimeBuilder;

    struct Fanout {
        seeds: u16,
        children: u16,
    }

    impl Service for Fanout {
        fn name(&self) -> &str {
            "fanout"
        }

        fn install(&mut self, exec: &mut dyn Executor) {
            let children = self.children;
            for i in 0..self.seeds {
                exec.register(
                    Event::new(Color::new(i + 1), 1_000).with_action(move |ctx| {
                        for c in 0..children {
                            ctx.register(Event::new(Color::new(1_000 + c), 100));
                        }
                    }),
                );
            }
        }
    }

    #[test]
    fn exec_kind_parses_and_prints() {
        assert_eq!("sim".parse::<ExecKind>().unwrap(), ExecKind::Sim);
        assert_eq!("Threaded".parse::<ExecKind>().unwrap(), ExecKind::Threaded);
        assert!("quantum".parse::<ExecKind>().is_err());
        assert_eq!(ExecKind::Sim.to_string(), "sim");
        assert_eq!(ExecKind::Threaded.to_string(), "threaded");
    }

    #[test]
    fn one_service_same_count_on_both_executors() {
        let mut counts = Vec::new();
        for kind in [ExecKind::Sim, ExecKind::Threaded] {
            let mut rt = RuntimeBuilder::new().cores(2).build(kind);
            assert_eq!(rt.kind(), kind);
            rt.install(Fanout {
                seeds: 10,
                children: 3,
            });
            counts.push(rt.run().events_processed());
        }
        assert_eq!(counts, vec![40, 40]);
    }

    #[test]
    fn runtime_exposes_the_concrete_executors() {
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        assert!(rt.as_sim().is_some());
        assert!(rt.as_sim_mut().is_some());
        assert!(rt.as_threaded().is_none());
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Threaded);
        assert!(rt.as_threaded().is_some());
        assert!(rt.as_threaded_mut().is_some());
        assert!(rt.as_sim().is_none());
    }

    #[test]
    fn sim_injector_feeds_the_run_loop() {
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        let injector = rt.injector();
        assert_eq!(injector.kind(), ExecKind::Sim);
        for i in 0..20u16 {
            injector.inject(Event::new(Color::new(i + 1), 100));
        }
        injector.inject_locked(Event::new(Color::new(30), 100));
        injector.inject_after(5_000, Event::new(Color::new(31), 100));
        assert_eq!(injector.outstanding(), 22);
        let report = rt.run();
        assert_eq!(report.events_processed(), 22);
        assert_eq!(injector.outstanding(), 0);
    }

    #[test]
    fn sim_keepalive_holds_the_run_open_for_external_producers() {
        let mut rt = RuntimeBuilder::new().cores(2).build(ExecKind::Sim);
        let injector = rt.injector();
        let keepalive = injector.keepalive();
        let producer = std::thread::spawn(move || {
            // The machine starts empty; without the keepalive the run
            // would have returned before these arrive.
            std::thread::sleep(std::time::Duration::from_millis(10));
            for i in 0..10u16 {
                injector.inject(Event::new(Color::new(i + 1), 100));
            }
            injector.stop_when_idle();
            drop(keepalive);
        });
        let report = rt.run();
        producer.join().unwrap();
        assert_eq!(report.events_processed(), 10);
    }

    #[test]
    fn sim_injector_stop_halts_the_run() {
        let mut rt = RuntimeBuilder::new().cores(1).build(ExecKind::Sim);
        let injector = rt.injector();
        for _ in 0..100 {
            injector.inject(Event::new(Color::new(1), 1_000_000_000));
        }
        injector.stop();
        let report = rt.run();
        assert!(report.events_processed() < 100);
        // The stop is consumed: a subsequent run proceeds normally.
        rt.register(Event::new(Color::new(2), 10));
        assert!(rt.run().events_processed() > report.events_processed());
    }
}
