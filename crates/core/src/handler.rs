//! Event-handler registry: names, cost annotations and workstealing
//! penalties.
//!
//! The time-left heuristic needs "the average processing time of the
//! various handlers", which the paper obtains "by first profiling the
//! application and then annotating the code of handlers" (Section III-B).
//! The penalty-aware heuristic likewise attaches a *workstealing penalty*
//! annotation per handler (Section III-C). [`HandlerSpec`] carries both.
//!
//! As the paper's future-work extension (Section VII), a handler may opt
//! into *measured* costs instead: the runtime then feeds observed
//! execution times into an EWMA and uses that as the estimate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a registered handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(u32);

impl HandlerId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handler#{}", self.0)
    }
}

/// How the runtime estimates a handler's processing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostSource {
    /// Use the programmer-provided [`HandlerSpec::avg_cost`] annotation
    /// (the paper's approach).
    #[default]
    Annotated,
    /// Use an online EWMA of observed execution times (the paper's
    /// future-work extension: "dynamically set time-left annotations ...
    /// based on automated monitoring", Section VII).
    Measured,
}

/// Static description of an event handler.
///
/// # Examples
///
/// ```
/// use mely_core::handler::HandlerSpec;
///
/// // A cheap parsing handler whose events carry a large, long-lived data
/// // set: give it a high stealing penalty so it is rarely migrated.
/// let spec = HandlerSpec::new("parse_request")
///     .cost(2_000)
///     .penalty(1_000);
/// assert_eq!(spec.ws_penalty, 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HandlerSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Annotated average processing time in cycles.
    pub avg_cost: u64,
    /// Workstealing penalty (≥ 1). An event contributes
    /// `cost / ws_penalty` to its color-queue's cumulative time, so large
    /// penalties make events unattractive to thieves (Section III-C).
    pub ws_penalty: u32,
    /// Whether estimates come from the annotation or from measurement.
    pub cost_source: CostSource,
}

impl HandlerSpec {
    /// Creates a spec with cost 0, penalty 1 and annotated costs.
    pub fn new(name: impl Into<String>) -> Self {
        HandlerSpec {
            name: name.into(),
            avg_cost: 0,
            ws_penalty: 1,
            cost_source: CostSource::Annotated,
        }
    }

    /// Sets the annotated average cost in cycles.
    pub fn cost(mut self, cycles: u64) -> Self {
        self.avg_cost = cycles;
        self
    }

    /// Sets the workstealing penalty. Values below 1 are clamped to 1.
    pub fn penalty(mut self, penalty: u32) -> Self {
        self.ws_penalty = penalty.max(1);
        self
    }

    /// Switches this handler to measured (EWMA) cost estimation.
    pub fn measured(mut self) -> Self {
        self.cost_source = CostSource::Measured;
        self
    }
}

/// Registry of all handlers of an application.
///
/// Registration happens before the runtime starts; cost *measurements* are
/// recorded concurrently from worker threads, hence the atomic EWMA state.
#[derive(Debug, Default)]
pub struct HandlerRegistry {
    specs: Vec<HandlerSpec>,
    /// Packed EWMA state per handler: value in the low 63 bits, seeded
    /// flag in the top bit. Updated lock-free from workers.
    measured: Vec<AtomicU64>,
}

const SEEDED_BIT: u64 = 1 << 63;

impl HandlerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler and returns its id.
    pub fn register(&mut self, spec: HandlerSpec) -> HandlerId {
        let id = HandlerId(self.specs.len() as u32);
        self.specs.push(spec);
        self.measured.push(AtomicU64::new(0));
        id
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no handler has been registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn spec(&self, id: HandlerId) -> &HandlerSpec {
        &self.specs[id.index()]
    }

    /// The current cost estimate for `id` in cycles: the annotation, or
    /// the measured EWMA once at least one sample exists (for
    /// [`CostSource::Measured`] handlers).
    pub fn estimate(&self, id: HandlerId) -> u64 {
        let spec = &self.specs[id.index()];
        match spec.cost_source {
            CostSource::Annotated => spec.avg_cost,
            CostSource::Measured => {
                let packed = self.measured[id.index()].load(Ordering::Relaxed);
                if packed & SEEDED_BIT != 0 {
                    packed & !SEEDED_BIT
                } else {
                    spec.avg_cost
                }
            }
        }
    }

    /// The workstealing penalty of `id`.
    pub fn penalty(&self, id: HandlerId) -> u32 {
        self.specs[id.index()].ws_penalty
    }

    /// Records one observed execution time for `id`. Only affects
    /// estimates of [`CostSource::Measured`] handlers, but is always
    /// cheap to call.
    pub fn record(&self, id: HandlerId, cycles: u64) {
        let cell = &self.measured[id.index()];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            // Same arithmetic as `Ewma::record`, on the packed state.
            let next_val = if cur & SEEDED_BIT != 0 {
                let v = cur & !SEEDED_BIT;
                v - v / 8 + cycles / 8
            } else {
                cycles
            };
            let packed = (next_val & !SEEDED_BIT) | SEEDED_BIT;
            match cell.compare_exchange_weak(cur, packed, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HandlerId, &HandlerSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (HandlerId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = HandlerRegistry::new();
        let a = r.register(HandlerSpec::new("a").cost(100));
        let b = r.register(HandlerSpec::new("b").cost(5_000).penalty(1_000));
        assert_eq!(r.len(), 2);
        assert_eq!(r.spec(a).name, "a");
        assert_eq!(r.estimate(a), 100);
        assert_eq!(r.estimate(b), 5_000);
        assert_eq!(r.penalty(b), 1_000);
        assert_eq!(r.penalty(a), 1);
    }

    #[test]
    fn penalty_clamped_to_one() {
        let s = HandlerSpec::new("x").penalty(0);
        assert_eq!(s.ws_penalty, 1);
    }

    #[test]
    fn annotated_handlers_ignore_measurements() {
        let mut r = HandlerRegistry::new();
        let a = r.register(HandlerSpec::new("a").cost(100));
        r.record(a, 9_999);
        assert_eq!(r.estimate(a), 100);
    }

    #[test]
    fn measured_handlers_track_samples() {
        let mut r = HandlerRegistry::new();
        let a = r.register(HandlerSpec::new("a").cost(100).measured());
        // Before any sample: fall back to the annotation.
        assert_eq!(r.estimate(a), 100);
        r.record(a, 1_000);
        assert_eq!(r.estimate(a), 1_000);
        for _ in 0..100 {
            r.record(a, 3_000);
        }
        assert!(r.estimate(a) > 2_500, "got {}", r.estimate(a));
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut r = HandlerRegistry::new();
        r.register(HandlerSpec::new("a"));
        r.register(HandlerSpec::new("b"));
        let names: Vec<_> = r.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
