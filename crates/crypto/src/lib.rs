//! Stream cipher and keyed MAC for the SFS secure file server.
//!
//! SFS spends "more than 60% of its time performing cryptographic
//! operations" (paper Section V-C2): every response is encrypted and
//! authenticated over a persistent session. This crate supplies that
//! CPU-bound workload with a from-scratch ChaCha20-style ARX stream
//! cipher ([`StreamCipher`]) and a keyed block MAC ([`Mac`]). They are
//! real, data-dependent computations — not sleeps — so the cost profile
//! (cycles per byte) matches the role crypto plays in the paper's
//! evaluation.
//!
//! **Security note:** this is a workload generator for a scheduling
//! study, not an audited cryptographic library. Do not use it to protect
//! data.
//!
//! # Examples
//!
//! ```
//! use mely_crypto::{Mac, SessionKey, StreamCipher};
//!
//! let key = SessionKey::from_seed(42);
//! let mut buf = b"hello, secure world".to_vec();
//! let tag = Mac::new(&key).compute(&buf);
//!
//! StreamCipher::new(&key, 7).apply(&mut buf);
//! assert_ne!(&buf, b"hello, secure world");
//! StreamCipher::new(&key, 7).apply(&mut buf);
//! assert_eq!(&buf, b"hello, secure world");
//! assert!(Mac::new(&key).verify(&buf, tag));
//! ```

/// A 256-bit session key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKey {
    words: [u32; 8],
}

impl SessionKey {
    /// Derives a key deterministically from a seed (clients and server
    /// share seeds per session in the SFS workload).
    pub fn from_seed(seed: u64) -> Self {
        let mut words = [0u32; 8];
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for w in &mut words {
            // splitmix64 expansion.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = (z ^ (z >> 31)) as u32;
        }
        SessionKey { words }
    }

    /// The raw key words.
    pub fn words(&self) -> &[u32; 8] {
        &self.words
    }
}

const ROUNDS: usize = 20;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produces one 64-byte keystream block (ChaCha20-style ARX core).
fn block(key: &SessionKey, nonce: u64, counter: u64) -> [u8; 64] {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key.words[0],
        key.words[1],
        key.words[2],
        key.words[3],
        key.words[4],
        key.words[5],
        key.words[6],
        key.words[7],
        counter as u32,
        (counter >> 32) as u32,
        nonce as u32,
        (nonce >> 32) as u32,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for (i, (s, ini)) in state.iter().zip(initial.iter()).enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.wrapping_add(*ini).to_le_bytes());
    }
    out
}

/// A ChaCha20-style stream cipher: XORs the keystream over a buffer.
/// Encryption and decryption are the same operation.
#[derive(Debug, Clone)]
pub struct StreamCipher {
    key: SessionKey,
    nonce: u64,
}

impl StreamCipher {
    /// Creates a cipher for `key` and a per-message `nonce`.
    pub fn new(key: &SessionKey, nonce: u64) -> Self {
        StreamCipher { key: *key, nonce }
    }

    /// Encrypts/decrypts `buf` in place, starting at keystream block 0.
    pub fn apply(&self, buf: &mut [u8]) {
        self.apply_at(buf, 0);
    }

    /// Encrypts/decrypts `buf` in place as if it started `offset` bytes
    /// into the message (for chunked processing).
    pub fn apply_at(&self, buf: &mut [u8], offset: u64) {
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let counter = abs / 64;
            let in_block = (abs % 64) as usize;
            let ks = block(&self.key, self.nonce, counter);
            let n = (64 - in_block).min(buf.len() - pos);
            for i in 0..n {
                buf[pos + i] ^= ks[in_block + i];
            }
            pos += n;
        }
    }
}

/// A MAC tag.
pub type Tag = u64;

/// A keyed MAC built from the same ARX core in a sponge-like mode: the
/// message is absorbed block-wise and the final state is squeezed into a
/// 64-bit tag.
#[derive(Debug, Clone)]
pub struct Mac {
    key: SessionKey,
}

impl Mac {
    /// Creates a MAC instance for `key`.
    pub fn new(key: &SessionKey) -> Self {
        Mac { key: *key }
    }

    /// Computes the tag of `data`.
    pub fn compute(&self, data: &[u8]) -> Tag {
        let mut acc: u64 = 0x5851_F42D_4C95_7F2D ^ (data.len() as u64);
        let mut counter: u64 = 0;
        for chunk in data.chunks(64) {
            let ks = block(&self.key, acc, counter);
            let mut mixed: u64 = 0;
            for (i, b) in chunk.iter().enumerate() {
                mixed = mixed
                    .rotate_left(7)
                    .wrapping_add((*b ^ ks[i]) as u64)
                    .wrapping_mul(0x100_0000_01B3);
            }
            acc ^= mixed;
            counter += 1;
        }
        // Final squeeze through one more block.
        let fin = block(&self.key, acc, counter);
        u64::from_le_bytes(fin[..8].try_into().expect("block is 64 bytes"))
    }

    /// Verifies `data` against `tag`.
    pub fn verify(&self, data: &[u8], tag: Tag) -> bool {
        self.compute(data) == tag
    }
}

/// Rough cost model: cycles per encrypted/MACed byte, used by the
/// simulation executor to charge virtual time for crypto work. With the
/// paper's SFS profile (coarse-grain handlers, ~1200 Kcycles of stolen
/// work per set) this matches ~50 KB processed per handler invocation.
pub const CYCLES_PER_BYTE: u64 = 12;

/// Virtual cycles to encrypt + MAC `len` bytes (simulation accounting).
pub fn crypto_cost_cycles(len: u64) -> u64 {
    // Encrypt + MAC both walk the data once.
    2 * CYCLES_PER_BYTE * len + 2_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let key = SessionKey::from_seed(1);
        for len in [0usize, 1, 63, 64, 65, 500, 4096] {
            let mut buf: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let orig = buf.clone();
            StreamCipher::new(&key, 9).apply(&mut buf);
            if len > 0 {
                assert_ne!(buf, orig, "len {len} must change");
            }
            StreamCipher::new(&key, 9).apply(&mut buf);
            assert_eq!(buf, orig, "len {len} must round-trip");
        }
    }

    #[test]
    fn chunked_equals_whole() {
        let key = SessionKey::from_seed(2);
        let mut whole: Vec<u8> = (0..1000).map(|i| (i * 7) as u8).collect();
        let mut chunked = whole.clone();
        StreamCipher::new(&key, 5).apply(&mut whole);
        let c = StreamCipher::new(&key, 5);
        c.apply_at(&mut chunked[..100], 0);
        c.apply_at(&mut chunked[100..777], 100);
        c.apply_at(&mut chunked[777..], 777);
        assert_eq!(whole, chunked);
    }

    #[test]
    fn different_keys_and_nonces_differ() {
        let k1 = SessionKey::from_seed(1);
        let k2 = SessionKey::from_seed(2);
        let msg = vec![0u8; 64];
        let enc = |k: &SessionKey, n: u64| {
            let mut b = msg.clone();
            StreamCipher::new(k, n).apply(&mut b);
            b
        };
        assert_ne!(enc(&k1, 0), enc(&k2, 0));
        assert_ne!(enc(&k1, 0), enc(&k1, 1));
    }

    #[test]
    fn keystream_is_not_trivially_biased() {
        let key = SessionKey::from_seed(3);
        let mut buf = vec![0u8; 4096];
        StreamCipher::new(&key, 0).apply(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let ratio = ones as f64 / total as f64;
        assert!((0.47..0.53).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn mac_detects_tampering() {
        let key = SessionKey::from_seed(4);
        let mac = Mac::new(&key);
        let mut data = b"the quick brown fox".to_vec();
        let tag = mac.compute(&data);
        assert!(mac.verify(&data, tag));
        data[3] ^= 1;
        assert!(!mac.verify(&data, tag));
        data[3] ^= 1;
        assert!(mac.verify(&data, tag));
        assert!(!mac.verify(&data[..data.len() - 1], tag));
    }

    #[test]
    fn mac_differs_per_key() {
        let data = b"payload";
        let t1 = Mac::new(&SessionKey::from_seed(1)).compute(data);
        let t2 = Mac::new(&SessionKey::from_seed(2)).compute(data);
        assert_ne!(t1, t2);
    }

    #[test]
    fn mac_is_deterministic() {
        let key = SessionKey::from_seed(9);
        let data = vec![7u8; 300];
        assert_eq!(Mac::new(&key).compute(&data), Mac::new(&key).compute(&data));
    }

    #[test]
    fn cost_model_is_linear() {
        assert!(crypto_cost_cycles(200_000) > crypto_cost_cycles(1_000));
        assert_eq!(
            crypto_cost_cycles(100) - crypto_cost_cycles(0),
            2 * CYCLES_PER_BYTE * 100
        );
    }

    #[test]
    fn key_from_seed_deterministic_and_spread() {
        assert_eq!(SessionKey::from_seed(5), SessionKey::from_seed(5));
        assert_ne!(SessionKey::from_seed(5), SessionKey::from_seed(6));
        let w = SessionKey::from_seed(5);
        assert!(w.words().iter().any(|&x| x != 0));
    }
}
